"""Tests for repro.experiments.scenarios: the §V-A setups."""

import pytest

from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    make_scheduler,
    memcached_scenario,
    mix_scenario,
    motivation_scenario,
    npb_scenario,
    overhead_scenario,
    redis_scenario,
    solo_scenario,
    spec_scenario,
)

GIB = 1024**3
CFG = ScenarioConfig(work_scale=0.05, seed=0)


class TestMakeScheduler:
    @pytest.mark.parametrize("name", SCHEDULER_NAMES)
    def test_all_names_construct(self, name):
        assert make_scheduler(name).name == name

    def test_case_insensitive(self):
        assert make_scheduler("VProbe").name == "vprobe"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("cfs")


class TestSpecScenario:
    def test_three_vm_layout(self):
        machine = spec_scenario("soplex", make_scheduler("credit"), CFG)
        assert [d.name for d in machine.domains] == ["vm1", "vm2", "vm3"]
        assert all(d.num_vcpus == 8 for d in machine.domains)

    def test_vm_memory_sizes(self):
        machine = spec_scenario("soplex", make_scheduler("credit"), CFG)
        assert machine.domain("vm1").memory_bytes == 15 * GIB
        assert machine.domain("vm2").memory_bytes == 5 * GIB
        assert machine.domain("vm3").memory_bytes == 1 * GIB

    def test_default_instance_split_4_4(self):
        machine = spec_scenario("soplex", make_scheduler("credit"), CFG)
        assert sum(w.active for w in machine.domain("vm1").workloads) == 4
        assert sum(w.active for w in machine.domain("vm2").workloads) == 4

    def test_mcf_instance_split_6_2(self):
        """§V-B1: VM2's 5 GB only fits two mcf instances."""
        machine = spec_scenario("mcf", make_scheduler("credit"), CFG)
        assert sum(w.active for w in machine.domain("vm1").workloads) == 6
        assert sum(w.active for w in machine.domain("vm2").workloads) == 2

    def test_vm3_runs_hungry_loops(self):
        machine = spec_scenario("soplex", make_scheduler("credit"), CFG)
        vm3 = machine.domain("vm3")
        assert all(w.profile.name == "hungry-loop" for w in vm3.workloads)
        assert all(w.active for w in vm3.workloads)

    def test_work_scale_applies(self):
        small = spec_scenario("soplex", make_scheduler("credit"), CFG)
        big = spec_scenario(
            "soplex", make_scheduler("credit"), ScenarioConfig(work_scale=0.5)
        )
        assert (
            big.domain("vm1").workloads[0].profile.total_instructions
            > small.domain("vm1").workloads[0].profile.total_instructions
        )


class TestMixScenario:
    def test_one_instance_of_each_app(self):
        machine = mix_scenario(make_scheduler("credit"), CFG)
        names = [
            w.profile.name for w in machine.domain("vm1").workloads if w.active
        ]
        assert sorted(names) == ["libquantum", "mcf", "milc", "soplex"]


class TestNpbScenario:
    def test_four_threads_per_vm(self):
        machine = npb_scenario("lu", make_scheduler("credit"), CFG)
        assert sum(w.active for w in machine.domain("vm1").workloads) == 4
        assert all(
            w.profile.name == "lu"
            for w in machine.domain("vm1").workloads
            if w.active
        )


class TestServiceScenarios:
    def test_memcached_eight_workers(self):
        machine = memcached_scenario(48, make_scheduler("credit"), CFG)
        assert sum(w.active for w in machine.domain("vm1").workloads) == 8

    def test_redis_four_servers(self):
        machine = redis_scenario(4000, make_scheduler("credit"), CFG)
        assert sum(w.active for w in machine.domain("vm1").workloads) == 4


class TestSoloScenario:
    def test_single_pinned_vcpu(self):
        machine = solo_scenario("lu", make_scheduler("credit"), CFG)
        assert len(machine.domains) == 1
        vcpu = machine.vcpus[0]
        assert vcpu.pcpu == 0
        # Memory local to node 0 (pin + first touch agree).
        assert machine.domain("vm1").placement.home_node(0) == 0


class TestMotivationScenario:
    def test_ii_b_memory_sizes(self):
        machine = motivation_scenario("lu", make_scheduler("credit"), CFG)
        assert machine.domain("vm1").memory_bytes == 8 * GIB
        assert machine.domain("vm3").memory_bytes == 2 * GIB


class TestOverheadScenario:
    @pytest.mark.parametrize("n", [1, 4])
    def test_vm_count_and_shape(self, n):
        machine = overhead_scenario(n, make_scheduler("vprobe"), CFG)
        assert len(machine.domains) == n
        assert all(d.num_vcpus == 2 for d in machine.domains)

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            overhead_scenario(0, make_scheduler("vprobe"), CFG)


class TestPairing:
    def test_same_seed_same_initial_placement_across_schedulers(self):
        a = spec_scenario("soplex", make_scheduler("credit"), CFG)
        b = spec_scenario("soplex", make_scheduler("vprobe"), CFG)
        assert [v.pcpu for v in a.vcpus] == [v.pcpu for v in b.vcpus]


class TestEpochCap:
    def test_timeout_names_the_scenario(self):
        from repro.xen.simulator import SimulationTimeout

        cfg = ScenarioConfig(
            work_scale=0.05, seed=0, max_epochs=10, label="tiny mix"
        )
        machine = mix_scenario(make_scheduler("credit"), cfg)
        with pytest.raises(SimulationTimeout, match="tiny mix") as err:
            machine.run()
        assert err.value.max_epochs == 10
        assert err.value.sim_time_s > 0

    def test_generous_cap_does_not_fire(self):
        cfg = ScenarioConfig(work_scale=0.02, seed=0, max_epochs=100_000)
        machine = mix_scenario(make_scheduler("credit"), cfg)
        machine.run()  # completes normally

    def test_invalid_cap_rejected(self):
        cfg = ScenarioConfig(work_scale=0.05, max_epochs=0)
        with pytest.raises(ValueError, match="max_epochs"):
            mix_scenario(make_scheduler("credit"), cfg)
