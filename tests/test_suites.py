"""Tests for repro.workloads.suites: calibration anchors and classes."""

import pytest

from repro.core.classify import Bounds, classify
from repro.workloads.suites import (
    ALL_PROFILES,
    NPB_PROFILES,
    SPEC_PROFILES,
    get_profile,
    hungry_loop,
    profile_names,
)
from repro.xen.vcpu import VcpuType

#: Fig. 3(b) anchors: profile RPTI must match the paper exactly.
PAPER_RPTI = {
    "povray": 0.48,
    "ep": 2.01,
    "lu": 15.38,
    "mg": 16.33,
    "milc": 21.68,
    "libquantum": 22.41,
}

#: Published classification per measured application.
PAPER_CLASS = {
    "povray": VcpuType.LLC_FR,
    "ep": VcpuType.LLC_FR,
    "lu": VcpuType.LLC_FI,
    "mg": VcpuType.LLC_FI,
    "milc": VcpuType.LLC_T,
    "libquantum": VcpuType.LLC_T,
}


class TestCalibrationAnchors:
    @pytest.mark.parametrize("app,rpti", sorted(PAPER_RPTI.items()))
    def test_rpti_matches_paper(self, app, rpti):
        assert get_profile(app).rpti == pytest.approx(rpti)

    @pytest.mark.parametrize("app,cls", sorted(PAPER_CLASS.items()))
    def test_static_classification_matches_paper(self, app, cls):
        profile = get_profile(app)
        assert classify(profile.rpti, Bounds()) is cls

    def test_all_evaluated_apps_memory_intensive(self):
        """Every §V-B workload app classifies as LLC-FI or LLC-T."""
        for app in ("soplex", "libquantum", "mcf", "milc", "bt", "cg", "lu", "mg", "sp"):
            vtype = classify(get_profile(app).rpti, Bounds())
            assert vtype.memory_intensive, app


class TestProfileShapes:
    def test_fi_apps_fit_in_socket_llc(self):
        """LLC-FI working sets must fit the 12 MiB LLC alone."""
        for app in ("bt", "lu", "mg", "sp", "soplex", "cg"):
            assert get_profile(app).working_set_bytes <= 12 * 1024**2, app

    def test_t_apps_exceed_socket_llc(self):
        for app in ("milc", "libquantum", "mcf"):
            assert get_profile(app).working_set_bytes > 12 * 1024**2, app

    def test_all_suite_profiles_finite(self):
        for name, profile in ALL_PROFILES.items():
            assert profile.is_finite, name

    def test_memory_apps_have_phases(self):
        assert get_profile("soplex").phase is not None
        assert get_profile("lu").phase is not None

    def test_profiles_have_os_noise(self):
        for name, profile in ALL_PROFILES.items():
            assert profile.blocking is not None, name
            assert profile.blocking.duty_cycle > 0.9, name


class TestRegistry:
    def test_names_sorted_and_complete(self):
        from repro.workloads.suites import EXTRA_PROFILES

        names = profile_names()
        assert list(names) == sorted(names)
        assert set(names) == (
            set(SPEC_PROFILES) | set(NPB_PROFILES) | set(EXTRA_PROFILES)
        )

    def test_unknown_profile_reports_known_names(self):
        with pytest.raises(KeyError, match="povray"):
            get_profile("nonexistent")

    def test_no_name_collisions_between_suites(self):
        assert not set(SPEC_PROFILES) & set(NPB_PROFILES)


class TestHungryLoop:
    def test_classifies_friendly(self):
        assert classify(hungry_loop().rpti, Bounds()) is VcpuType.LLC_FR

    def test_never_finishes(self):
        assert not hungry_loop().is_finite

    def test_never_blocks(self):
        assert hungry_loop().blocking is None

    def test_no_first_touch(self):
        assert hungry_loop().touch_rate == 0.0


class TestExtraProfiles:
    """The beyond-the-paper profile set (EXTRA_PROFILES)."""

    def test_registered_in_all_profiles(self):
        from repro.workloads.suites import EXTRA_PROFILES

        for name in EXTRA_PROFILES:
            assert get_profile(name).name == name

    def test_extra_classes_as_characterised(self):
        assert classify(get_profile("lbm").rpti, Bounds()) is VcpuType.LLC_T
        assert classify(get_profile("is").rpti, Bounds()) is VcpuType.LLC_T
        for app in ("ft", "ua", "omnetpp", "gcc"):
            assert classify(get_profile(app).rpti, Bounds()) is VcpuType.LLC_FI, app

    def test_no_collision_with_paper_set(self):
        from repro.workloads.suites import EXTRA_PROFILES

        assert not set(EXTRA_PROFILES) & (set(SPEC_PROFILES) | set(NPB_PROFILES))

    def test_extra_profiles_runnable(self):
        """An end-to-end spin with one extra profile."""
        from repro.experiments import ScenarioConfig, quick_comparison

        res = quick_comparison("lbm", schedulers=("credit",), work_scale=0.01)
        assert res["credit"] > 0
