"""Tests for repro.experiments.parallel.

The parallel runner must be a drop-in for the serial one: identical
results (each cell is an independent seeded simulation), identical
ordering, identical aggregation — only the wall clock changes.
"""

import os
from functools import partial

import pytest

from repro.experiments.parallel import (
    ParallelExecutionError,
    ParallelRunner,
    cell_name,
    default_jobs,
)
from repro.experiments.runner import compare, compare_mean
from repro.experiments.scenarios import ScenarioConfig, solo_scenario

CFG = ScenarioConfig(work_scale=0.02, seed=0)
BUILDER = partial(solo_scenario, "lu")


class TestParallelRunner:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_serial_fallback_is_serial_compare(self):
        serial = compare(BUILDER, CFG, ("credit", "vprobe"))
        runner = ParallelRunner(1).compare(BUILDER, CFG, ("credit", "vprobe"))
        assert serial == runner

    def test_parallel_compare_matches_serial(self):
        serial = compare(BUILDER, CFG, ("credit", "vprobe", "lb"))
        parallel = ParallelRunner(3).compare(
            BUILDER, CFG, ("credit", "vprobe", "lb")
        )
        assert tuple(parallel) == ("credit", "vprobe", "lb")
        assert parallel == serial

    def test_parallel_compare_mean_matches_serial(self):
        serial = compare_mean(BUILDER, CFG, ("credit", "vprobe"), seeds=(0, 1))
        parallel = ParallelRunner(4).compare_mean(
            BUILDER, CFG, ("credit", "vprobe"), seeds=(0, 1)
        )
        assert parallel == serial

    def test_compare_mean_requires_seeds(self):
        with pytest.raises(ValueError):
            ParallelRunner(2).compare_mean(BUILDER, CFG, seeds=())

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            ParallelRunner(1, engine="turbo")

    def test_parallel_identical_across_engines(self):
        """Engine selection changes wall time only, even under a pool.

        The same cells fan out once per engine; ``RunSummary.__eq__``
        covers every simulated quantity (``phase_profile`` is
        ``compare=False`` — host wall-clock differs by engine), so this
        pins the runner's engine threading AND the engines' bitwise
        contract end-to-end through worker processes.
        """
        schedulers = ("credit", "vprobe")
        results = {
            engine: ParallelRunner(2, engine=engine).compare(
                BUILDER, CFG, schedulers
            )
            for engine in ("reference", "vector", "batched")
        }
        assert results["vector"] == results["reference"]
        assert results["batched"] == results["reference"]

    def test_run_grid_parallel_matches_serial(self):
        from repro.experiments import fig5

        serial = fig5.run(CFG, workloads=("lu", "sp"), schedulers=("credit", "vprobe"))
        parallel = fig5.run(
            CFG, workloads=("lu", "sp"), schedulers=("credit", "vprobe"), jobs=4
        )
        assert serial == parallel


def _crashing_builder(policy, cfg):
    """Kills the worker process the first time it runs in a pool.

    ``os._exit`` bypasses the executor's exception channel entirely,
    which is exactly how a segfaulting worker looks to the parent:
    the whole pool breaks.  In the parent (serial retry) it behaves.
    """
    import multiprocessing
    import os

    if multiprocessing.parent_process() is not None:
        os._exit(1)
    return solo_scenario("lu", policy, cfg)


def _failing_builder(policy, cfg):
    raise RuntimeError("scenario cannot be built")


class TestCrashRecovery:
    def test_worker_crash_recovered_by_serial_retry(self):
        cells = [
            (_crashing_builder, name, CFG) for name in ("credit", "vprobe")
        ]
        runner = ParallelRunner(2)
        results = runner.run_cells(cells)
        assert runner.retried_cells  # the crash did not pass silently
        clean = ParallelRunner(1).run_cells(
            [(BUILDER, name, CFG) for name in ("credit", "vprobe")]
        )
        assert results == clean

    def test_persistent_failure_aggregates_cell_names(self):
        cells = [
            (_failing_builder, name, CFG) for name in ("credit", "vprobe")
        ]
        with pytest.raises(ParallelExecutionError) as err:
            ParallelRunner(2).run_cells(cells)
        assert len(err.value.failures) == 2
        # Keys carry the grid index so identical-looking cells stay distinct.
        assert "_failing_builder/credit/seed=0#0" in err.value.failures
        assert "_failing_builder/vprobe/seed=0#1" in err.value.failures
        assert "scenario cannot be built" in str(err.value)

    def test_clean_parallel_run_reports_no_retries(self):
        runner = ParallelRunner(2)
        runner.run_cells([(BUILDER, name, CFG) for name in ("credit", "vprobe")])
        assert runner.retried_cells == []


class TestDefaultJobs:
    def test_respects_affinity_mask(self, monkeypatch):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        assert default_jobs() == 2

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert default_jobs() == 6


class TestCellName:
    def test_unwraps_partials(self):
        assert cell_name((BUILDER, "credit", CFG)) == "solo_scenario(lu)/credit/seed=0"

    def test_plain_function(self):
        assert cell_name((_failing_builder, "lb", CFG)) == "_failing_builder/lb/seed=0"
