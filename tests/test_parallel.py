"""Tests for repro.experiments.parallel.

The parallel runner must be a drop-in for the serial one: identical
results (each cell is an independent seeded simulation), identical
ordering, identical aggregation — only the wall clock changes.
"""

from functools import partial

import pytest

from repro.experiments.parallel import ParallelRunner, default_jobs
from repro.experiments.runner import compare, compare_mean
from repro.experiments.scenarios import ScenarioConfig, solo_scenario

CFG = ScenarioConfig(work_scale=0.02, seed=0)
BUILDER = partial(solo_scenario, "lu")


class TestParallelRunner:
    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ValueError):
            ParallelRunner(0)

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1

    def test_serial_fallback_is_serial_compare(self):
        serial = compare(BUILDER, CFG, ("credit", "vprobe"))
        runner = ParallelRunner(1).compare(BUILDER, CFG, ("credit", "vprobe"))
        assert serial == runner

    def test_parallel_compare_matches_serial(self):
        serial = compare(BUILDER, CFG, ("credit", "vprobe", "lb"))
        parallel = ParallelRunner(3).compare(
            BUILDER, CFG, ("credit", "vprobe", "lb")
        )
        assert tuple(parallel) == ("credit", "vprobe", "lb")
        assert parallel == serial

    def test_parallel_compare_mean_matches_serial(self):
        serial = compare_mean(BUILDER, CFG, ("credit", "vprobe"), seeds=(0, 1))
        parallel = ParallelRunner(4).compare_mean(
            BUILDER, CFG, ("credit", "vprobe"), seeds=(0, 1)
        )
        assert parallel == serial

    def test_compare_mean_requires_seeds(self):
        with pytest.raises(ValueError):
            ParallelRunner(2).compare_mean(BUILDER, CFG, seeds=())

    def test_run_grid_parallel_matches_serial(self):
        from repro.experiments import fig5

        serial = fig5.run(CFG, workloads=("lu", "sp"), schedulers=("credit", "vprobe"))
        parallel = fig5.run(
            CFG, workloads=("lu", "sp"), schedulers=("credit", "vprobe"), jobs=4
        )
        assert serial == parallel
