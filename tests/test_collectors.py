"""Tests for repro.metrics.collectors."""

import pytest

from repro.hardware.topology import xeon_e5620
from repro.metrics.collectors import summarize
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

GIB = 1024**3


@pytest.fixture
def finished_machine():
    machine = Machine(xeon_e5620(), CreditScheduler(), SimConfig(seed=0, max_time_s=20.0))
    profile = synthetic_profile("llc-fi", total_instructions=3e8, with_phases=False)
    machine.add_domain(
        Domain.homogeneous("vm1", 1 * GIB, place_split(2, 2), profile, 2)
    )
    machine.add_domain(
        Domain.homogeneous("vm2", 1 * GIB, place_split(2, 2), profile, 2)
    )
    machine.run()
    return machine


class TestDomainStats:
    def test_instruction_totals_match_workloads(self, finished_machine):
        summary = summarize(finished_machine)
        for name in ("vm1", "vm2"):
            assert summary.domain(name).instructions == pytest.approx(2 * 3e8)

    def test_total_accesses_is_local_plus_remote(self, finished_machine):
        stats = summarize(finished_machine).domain("vm1")
        assert stats.total_accesses == pytest.approx(
            stats.local_accesses + stats.remote_accesses
        )

    def test_remote_ratio_in_unit_interval(self, finished_machine):
        stats = summarize(finished_machine).domain("vm1")
        assert 0.0 <= stats.remote_ratio <= 1.0

    def test_rpti_matches_profile(self, finished_machine):
        stats = summarize(finished_machine).domain("vm1")
        # synthetic llc-fi preset: RPTI 12.
        assert stats.rpti == pytest.approx(12.0, rel=0.05)

    def test_miss_rate_bounded(self, finished_machine):
        stats = summarize(finished_machine).domain("vm1")
        assert 0.0 < stats.llc_miss_rate < 1.0

    def test_mean_finish_time_present(self, finished_machine):
        stats = summarize(finished_machine).domain("vm1")
        assert stats.mean_finish_time_s is not None
        assert stats.mean_finish_time_s > 0

    def test_throughput_ops(self, finished_machine):
        stats = summarize(finished_machine).domain("vm1")
        ops_per_s = stats.throughput_ops(instr_per_op=1e4)
        expected = (stats.instructions / 1e4) / stats.mean_finish_time_s
        assert ops_per_s == pytest.approx(expected)


class TestMachineStats:
    def test_busy_time_positive_and_bounded(self, finished_machine):
        stats = summarize(finished_machine).machine_stats
        max_busy = finished_machine.time * len(finished_machine.pcpus)
        assert 0 < stats.busy_time_s <= max_busy + 1e-9

    def test_overhead_fraction_zero_for_plain_credit(self, finished_machine):
        stats = summarize(finished_machine).machine_stats
        assert stats.overhead_fraction == 0.0

    def test_policy_name_recorded(self, finished_machine):
        assert summarize(finished_machine).policy == "credit"

    def test_unknown_domain_raises(self, finished_machine):
        with pytest.raises(KeyError):
            summarize(finished_machine).domain("vm9")
