"""Tests for the content-addressed result cache (:mod:`repro.cache`).

The cache's entire value proposition rests on two claims: a hit is
*exactly* the result a fresh run would produce, and a key changes
whenever anything result-defining changes.  These tests pin both, plus
the failure modes (corruption, concurrency, unfingerprintable
builders) and the CLI/maintenance surface.
"""

import dataclasses
import json
import pathlib
import subprocess
import sys
from concurrent.futures import ProcessPoolExecutor
from functools import partial

import pytest

import repro
from repro.cache import (
    CACHE_SCHEMA,
    ResultCache,
    builder_fingerprint,
    resolve_cache,
    result_key,
    scenario_key,
)
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import execute_cell, run_one
from repro.experiments.scenarios import (
    ScenarioConfig,
    mix_scenario,
    solo_scenario,
    spec_scenario,
)
from repro.faults.plan import FaultPlan, fault_preset

CFG = ScenarioConfig(work_scale=0.02, seed=0)
BUILDER = partial(solo_scenario, "lu")


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestBuilderFingerprint:
    def test_module_level_function(self):
        assert (
            builder_fingerprint(mix_scenario)
            == "repro.experiments.scenarios.mix_scenario()"
        )

    def test_partial_with_primitive_args(self):
        fp = builder_fingerprint(partial(spec_scenario, "soplex"))
        assert fp == "repro.experiments.scenarios.spec_scenario('soplex')"

    def test_nested_partial_and_keywords(self):
        fp = builder_fingerprint(
            partial(partial(spec_scenario, "mcf"), instances=4)
        )
        assert "mcf" in fp and "instances=4" in fp

    def test_lambda_has_no_identity(self):
        assert builder_fingerprint(lambda policy, cfg: None) is None

    def test_closure_has_no_identity(self):
        def outer():
            def inner(policy, cfg):
                return None

            return inner

        assert builder_fingerprint(outer()) is None

    def test_non_primitive_bound_arg_has_no_identity(self):
        assert builder_fingerprint(partial(spec_scenario, object())) is None

    def test_unidentified_builder_bypasses_cache(self, cache):
        builder = lambda policy, cfg: None  # noqa: E731
        assert result_key(builder, "credit", CFG) is None
        # run_one must fall back to the raw path without touching disk
        summary = run_one(BUILDER, "credit", CFG)
        assert summary == run_one(BUILDER, "credit", CFG, cache=None)
        assert cache.hits == cache.misses == cache.stores == 0


class TestKeySensitivity:
    def key(self, **overrides):
        return result_key(BUILDER, "credit", dataclasses.replace(CFG, **overrides))

    def test_changed_result_fields_miss(self):
        base = self.key()
        assert base != self.key(work_scale=0.03)
        assert base != self.key(seed=1)
        assert base != self.key(sample_period_s=2.0)
        assert base != self.key(max_time_s=99.0)
        assert base != result_key(BUILDER, "vprobe", CFG)
        assert base != result_key(partial(solo_scenario, "mg"), "credit", CFG)

    def test_fault_plan_changes_key(self):
        base = self.key()
        chaos = self.key(faults=fault_preset("chaos"))
        drop = self.key(faults=FaultPlan(drop_rate=0.5))
        assert len({base, chaos, drop}) == 3

    def test_non_result_fields_share_key(self):
        base = self.key()
        assert base == self.key(engine="reference")
        assert base == self.key(log_events=True)
        assert base == self.key(label="something else")

    def test_version_stamp_invalidates(self, monkeypatch):
        base = self.key()
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        assert base != self.key()

    def test_scenario_key_explicit_identity(self):
        a = scenario_key("b()", "ablation:x/one", CFG)
        b = scenario_key("b()", "ablation:x/two", CFG)
        assert a != b and len(a) == 64


class TestHitEquality:
    def test_hit_equals_fresh_run(self, cache):
        fresh = run_one(BUILDER, "vprobe", CFG, cache=cache)
        hit = run_one(BUILDER, "vprobe", CFG, cache=cache)
        assert cache.hits == 1 and cache.stores == 1
        assert hit == fresh
        # field-for-field, not just dataclass __eq__
        assert hit.to_dict(include_profile=True) == fresh.to_dict(
            include_profile=True
        )

    def test_hit_preserves_phase_profile(self, cache):
        fresh = run_one(BUILDER, "vprobe", CFG, cache=cache)
        hit = run_one(BUILDER, "vprobe", CFG, cache=cache)
        assert fresh.phase_profile is not None
        assert hit.phase_profile is not None
        assert set(hit.phase_profile) == set(fresh.phase_profile)

    def test_hit_preserves_fault_stats(self, cache):
        cfg = dataclasses.replace(CFG, faults=fault_preset("chaos"))
        fresh = run_one(BUILDER, "vprobe", cfg, cache=cache)
        hit = run_one(BUILDER, "vprobe", cfg, cache=cache)
        assert fresh.fault_stats is not None
        assert hit.fault_stats == fresh.fault_stats

    def test_uncached_path_unchanged(self, cache):
        assert run_one(BUILDER, "credit", CFG) == execute_cell(
            BUILDER, "credit", CFG
        )


class TestCorruption:
    def fill(self, cache):
        summary = run_one(BUILDER, "credit", CFG, cache=cache)
        return result_key(BUILDER, "credit", CFG), summary

    def test_truncated_entry_is_miss_and_rewritten(self, cache):
        key, summary = self.fill(cache)
        path = cache.path_for(key)
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        assert cache.get(key) is None
        rerun = run_one(BUILDER, "credit", CFG, cache=cache)
        assert rerun == summary
        assert cache.get(key) == summary  # rewritten

    def test_garbage_entry_is_miss(self, cache):
        key, _ = self.fill(cache)
        cache.path_for(key).write_text("not json at all {{{")
        assert cache.get(key) is None

    def test_wrong_schema_is_miss(self, cache):
        key, _ = self.fill(cache)
        entry = json.loads(cache.path_for(key).read_text())
        entry["schema"] = "something/else"
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_missing_summary_fields_is_miss(self, cache):
        key, _ = self.fill(cache)
        entry = json.loads(cache.path_for(key).read_text())
        del entry["summary"]["machine_stats"]["sim_time_s"]
        cache.path_for(key).write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_put_failure_reports_false(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        summary = execute_cell(BUILDER, "credit", CFG)
        # a plain file where the shard directory should go: mkdir fails
        (cache.root / "ab").write_text("in the way")
        assert cache.put("ab" + "0" * 62, summary) is False


def _concurrent_put(root: str) -> bool:
    """Worker: compute the same cell and store it under the same key."""
    cache = ResultCache(pathlib.Path(root))
    cfg = ScenarioConfig(work_scale=0.02, seed=0)
    builder = partial(solo_scenario, "lu")
    summary = execute_cell(builder, "credit", cfg)
    return cache.put(result_key(builder, "credit", cfg), summary)


class TestConcurrency:
    def test_two_processes_write_same_key(self, tmp_path):
        root = str(tmp_path / "cache")
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = list(pool.map(_concurrent_put, [root, root]))
        assert results == [True, True]
        cache = ResultCache(pathlib.Path(root))
        assert cache.get(result_key(BUILDER, "credit", CFG)) == execute_cell(
            BUILDER, "credit", CFG
        )


class TestParallelRunnerCache:
    CELLS = [
        (BUILDER, sched, dataclasses.replace(CFG, seed=seed))
        for sched in ("credit", "vprobe")
        for seed in (0, 1, 2)
    ]

    def test_warm_run_all_hits_and_equal(self, cache):
        runner = ParallelRunner(1, cache=cache)
        cold = runner.run_cells(self.CELLS)
        assert (runner.cache_hits, runner.cache_misses) == (0, 6)
        warm = runner.run_cells(self.CELLS)
        assert (runner.cache_hits, runner.cache_misses) == (6, 0)
        assert warm == cold
        assert runner.total_cache_hits == 6
        assert runner.total_cache_misses == 6

    def test_parallel_warm_matches_serial_cold(self, cache):
        cold = ParallelRunner(1).run_cells(self.CELLS)
        ParallelRunner(2, cache=cache).run_cells(self.CELLS)
        warm_runner = ParallelRunner(2, cache=cache)
        assert warm_runner.run_cells(self.CELLS) == cold
        assert warm_runner.cache_misses == 0

    def test_chunksize_variants_match(self, cache):
        base = ParallelRunner(1).run_cells(self.CELLS)
        for chunksize in (1, 2, len(self.CELLS)):
            runner = ParallelRunner(2, chunksize=chunksize)
            assert runner.run_cells(self.CELLS) == base

    def test_partial_warm_only_runs_misses(self, cache):
        runner = ParallelRunner(1, cache=cache)
        runner.run_cells(self.CELLS[:3])
        runner.run_cells(self.CELLS)
        assert (runner.cache_hits, runner.cache_misses) == (3, 3)


class TestMaintenance:
    def test_stats_prune_clear(self, cache, monkeypatch):
        run_one(BUILDER, "credit", CFG, cache=cache)
        run_one(BUILDER, "vprobe", CFG, cache=cache)
        # one corrupt entry + one stale (other version) entry
        key = result_key(BUILDER, "credit", CFG)
        (cache.root / key[:2] / ("f" * 64 + ".json")).write_text("{")
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        run_one(BUILDER, "lb", CFG, cache=cache)
        monkeypatch.undo()
        stats = cache.scan()
        assert (stats.entries, stats.stale, stats.corrupt) == (2, 1, 1)
        assert "2 entries" in stats.format()
        assert cache.prune() == (1, 1)
        assert cache.scan().corrupt == cache.scan().stale == 0
        assert cache.clear() == 2
        assert cache.scan().entries == 0

    def test_resolve_cache_policy(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert resolve_cache(None, False) is None
        assert resolve_cache(tmp_path / "a", True) is None  # --no-cache wins
        assert resolve_cache(tmp_path / "a", False).root == tmp_path / "a"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env"))
        assert resolve_cache(None, False).root == tmp_path / "env"
        assert resolve_cache(tmp_path / "a", False).root == tmp_path / "a"
        assert resolve_cache(None, True) is None


class TestCliIntegration:
    def run_cli(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro", *argv],
            capture_output=True,
            text=True,
            env={
                "PYTHONPATH": str(
                    pathlib.Path(__file__).resolve().parents[1] / "src"
                ),
                "PATH": "/usr/bin:/bin",
            },
        )

    def test_compare_twice_hits_cache(self, tmp_path):
        args = (
            "compare",
            "lu",
            "--schedulers",
            "credit",
            "vprobe",
            "--work-scale",
            "0.02",
            "--cache-dir",
            str(tmp_path / "c"),
        )
        cold = self.run_cli(*args)
        warm = self.run_cli(*args)
        assert cold.returncode == warm.returncode == 0, cold.stderr
        assert "cache: 0 hits, 2 misses" in cold.stdout
        assert "cache: 2 hits, 0 misses" in warm.stdout
        # identical result tables either way
        table = lambda out: out.split("cache:")[0]
        assert table(cold.stdout) == table(warm.stdout)

    def test_compare_json_carries_cache_stats(self, tmp_path):
        out = tmp_path / "cmp.json"
        res = self.run_cli(
            "compare",
            "lu",
            "--schedulers",
            "credit",
            "--work-scale",
            "0.02",
            "--cache-dir",
            str(tmp_path / "c"),
            "--json",
            str(out),
        )
        assert res.returncode == 0, res.stderr
        payload = json.loads(out.read_text())["payload"]
        assert payload["cache"] == {"hits": 0, "misses": 1}
        assert payload["retried_cells"] == []

    def test_cache_subcommand(self, tmp_path):
        cdir = str(tmp_path / "c")
        self.run_cli(
            "compare", "lu", "--schedulers", "credit",
            "--work-scale", "0.02", "--cache-dir", cdir,
        )
        stats = self.run_cli("cache", "stats", "--cache-dir", cdir)
        assert stats.returncode == 0 and "1 entries" in stats.stdout
        prune = self.run_cli("cache", "prune", "--cache-dir", cdir)
        assert "pruned 0 stale, 0 corrupt" in prune.stdout
        clear = self.run_cli("cache", "clear", "--cache-dir", cdir)
        assert "removed 1 entries" in clear.stdout

    def test_cache_subcommand_requires_dir(self):
        res = self.run_cli("cache", "stats")
        assert res.returncode == 2
        assert "no cache directory" in res.stdout


class TestEntryFormat:
    def test_entry_carries_meta_and_version(self, cache):
        run_one(BUILDER, "vprobe", CFG, cache=cache)
        key = result_key(BUILDER, "vprobe", CFG)
        entry = json.loads(cache.path_for(key).read_text())
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["version"] == repro.__version__
        assert entry["key"] == key
        assert entry["meta"]["scheduler"] == "vprobe"
        assert entry["meta"]["seed"] == 0

    def test_entries_sharded_by_key_prefix(self, cache):
        run_one(BUILDER, "vprobe", CFG, cache=cache)
        key = result_key(BUILDER, "vprobe", CFG)
        assert cache.path_for(key).parent.name == key[:2]


class TestMaintenanceRaces:
    """prune/clear racing concurrent writers must never raise.

    A shared cache directory sees other processes writing (mkstemp temp
    files appearing), finishing (entries materialising) and pruning
    (entries vanishing) at any time.  The maintenance commands may
    under- or over-count in a race window, but they may not crash, and
    a surviving half-written entry must read as a miss, never poison a
    result.
    """

    def fill(self, cache):
        run_one(BUILDER, "credit", CFG, cache=cache)
        run_one(BUILDER, "vprobe", CFG, cache=cache)

    def test_prune_tolerates_entries_vanishing_mid_walk(self, cache, monkeypatch):
        self.fill(cache)
        ghost = cache.root / "aa" / ("a" * 64 + ".json")
        real = list(cache._entry_files())
        monkeypatch.setattr(
            ResultCache, "_entry_files", lambda self: iter([ghost] + real)
        )
        # The ghost reads as corrupt, its unlink fails, and neither is
        # fatal: prune reports only what it actually deleted.
        assert cache.prune() == (0, 0)
        assert cache.scan().entries == 2

    def test_clear_tolerates_entries_vanishing_mid_walk(self, cache, monkeypatch):
        self.fill(cache)
        ghost = cache.root / "aa" / ("a" * 64 + ".json")
        real = list(cache._entry_files())
        monkeypatch.setattr(
            ResultCache, "_entry_files", lambda self: iter([ghost] + real)
        )
        assert cache.clear() == 2  # the ghost is skipped, not counted
        assert cache.scan().entries == 0

    def test_scan_tolerates_entries_vanishing_mid_walk(self, cache, monkeypatch):
        self.fill(cache)
        ghost = cache.root / "aa" / ("a" * 64 + ".json")
        real = list(cache._entry_files())
        monkeypatch.setattr(
            ResultCache, "_entry_files", lambda self: iter([ghost] + real)
        )
        stats = cache.scan()
        assert (stats.entries, stats.stale, stats.corrupt) == (2, 0, 0)

    def test_prune_with_concurrent_half_written_entry(self, cache):
        # A writer mid-put: its mkstemp temp file sits in the shard
        # directory.  prune classifies it corrupt and removes it; the
        # writer's os.replace then fails and its put reports False —
        # the documented worst case is redoing work, never crashing.
        self.fill(cache)
        key = result_key(BUILDER, "credit", CFG)
        shard = cache.path_for(key).parent
        (shard / ".tmp-inflight.json").write_text('{"schema": "repro.resu')
        assert cache.prune() == (0, 1)
        assert cache.scan().entries == 2

    def test_corrupt_entry_stays_a_miss_after_failed_prune(
        self, cache, monkeypatch
    ):
        self.fill(cache)
        key = result_key(BUILDER, "credit", CFG)
        path = cache.path_for(key)
        path.write_text("{definitely not json")
        # Another process holds the file somehow: unlink fails.
        monkeypatch.setattr(
            pathlib.Path, "unlink", lambda self, **kw: (_ for _ in ()).throw(OSError())
        )
        assert cache.prune() == (0, 0)  # did not raise, deleted nothing
        monkeypatch.undo()
        assert cache.get(key) is None  # still a miss, not an error
        misses = cache.misses
        assert misses >= 1
        # And the next run overwrites it back to health.
        run_one(BUILDER, "credit", CFG, cache=cache)
        assert cache.get(key) is not None
