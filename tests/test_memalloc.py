"""Tests for repro.xen.memalloc: placement policies, drift, migration."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xen.memalloc import (
    MemoryPlacement,
    place_interleaved,
    place_single_node,
    place_split,
    place_weighted,
)


class TestConstruction:
    def test_rows_must_sum_to_one(self):
        with pytest.raises(ValueError):
            MemoryPlacement(np.array([[0.5, 0.4]]))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            MemoryPlacement(np.array([[1.5, -0.5]]))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            MemoryPlacement(np.array([1.0]))


class TestPolicies:
    def test_split_stripes_slices(self):
        placement = place_split(4, 2)
        assert placement.home_node(0) == 0
        assert placement.home_node(1) == 1
        assert placement.home_node(2) == 0
        assert placement.home_node(3) == 1

    def test_split_overall_mix_even(self):
        mix = place_split(4, 2).overall_mix()
        assert mix == pytest.approx([0.5, 0.5])

    def test_single_node_concentrates(self):
        placement = place_single_node(3, 2, node=1)
        for s in range(3):
            assert placement.slice_mix(s)[1] == 1.0

    def test_interleave_uniform(self):
        placement = place_interleaved(2, 4)
        assert placement.slice_mix(0) == pytest.approx([0.25] * 4)

    def test_weighted_normalises(self):
        placement = place_weighted([[2.0, 2.0], [1.0, 3.0]])
        assert placement.slice_mix(0) == pytest.approx([0.5, 0.5])
        assert placement.slice_mix(1) == pytest.approx([0.25, 0.75])

    def test_weighted_rejects_zero_row(self):
        with pytest.raises(ValueError):
            place_weighted([[0.0, 0.0]])


class TestPageMix:
    def test_full_concentration_is_slice_mix(self):
        placement = place_split(4, 2)
        assert placement.page_mix(0, 1.0) == pytest.approx([1.0, 0.0])

    def test_zero_concentration_is_overall_mix(self):
        placement = place_split(4, 2)
        assert placement.page_mix(0, 0.0) == pytest.approx([0.5, 0.5])

    def test_blend(self):
        placement = place_split(2, 2)
        mix = placement.page_mix(0, 0.8)
        assert mix[0] == pytest.approx(0.8 * 1.0 + 0.2 * 0.5)

    @given(st.floats(min_value=0, max_value=1))
    def test_page_mix_always_a_distribution(self, conc):
        placement = place_split(4, 2)
        mix = placement.page_mix(1, conc)
        assert mix.sum() == pytest.approx(1.0)
        assert (mix >= 0).all()


class TestDrift:
    def test_drift_moves_toward_node(self):
        placement = place_single_node(1, 2, node=0)
        placement.drift_slice(0, toward_node=1, amount=0.5)
        assert placement.slice_mix(0) == pytest.approx([0.5, 0.5])

    def test_drift_preserves_distribution(self):
        placement = place_split(2, 2)
        for _ in range(10):
            placement.drift_slice(0, 1, 0.1)
        assert placement.slice_mix(0).sum() == pytest.approx(1.0)

    def test_zero_drift_noop(self):
        placement = place_split(2, 2)
        before = placement.slice_mix(0)
        placement.drift_slice(0, 1, 0.0)
        assert placement.slice_mix(0) == pytest.approx(before)

    def test_repeated_drift_converges(self):
        placement = place_single_node(1, 2, node=0)
        for _ in range(200):
            placement.drift_slice(0, 1, 0.05)
        assert placement.slice_mix(0)[1] > 0.99


class TestMigration:
    def test_migrate_slice_moves_fraction(self):
        placement = place_single_node(1, 2, node=0)
        moved = placement.migrate_slice(0, to_node=1, fraction=0.4, slice_bytes=100.0)
        assert moved == pytest.approx(40.0)
        assert placement.slice_mix(0)[1] == pytest.approx(0.4)

    def test_migrating_to_home_is_free(self):
        placement = place_single_node(1, 2, node=0)
        moved = placement.migrate_slice(0, to_node=0, fraction=0.4, slice_bytes=100.0)
        assert moved == pytest.approx(0.0)

    def test_rows_stay_normalised(self):
        placement = place_interleaved(1, 3)
        placement.migrate_slice(0, 2, 0.7, 10.0)
        assert placement.slice_mix(0).sum() == pytest.approx(1.0)
