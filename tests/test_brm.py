"""Tests for repro.baselines.brm: uncore penalty + bias random migration."""

import pytest

from repro.baselines.brm import BRMParams, BRMScheduler
from repro.baselines.lock import GlobalLockModel
from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

GIB = 1024**3


def build(num_vcpus=8, seed=0, brm_params=None, lock=None):
    policy = BRMScheduler(brm_params=brm_params, lock=lock)
    machine = Machine(xeon_e5620(), policy, SimConfig(seed=seed, max_time_s=10.0))
    profile = synthetic_profile("llc-t", total_instructions=None)
    machine.add_domain(
        Domain.homogeneous("vm", 1 * GIB, place_split(num_vcpus, 2), profile, num_vcpus)
    )
    return machine, policy


class TestParams:
    def test_defaults_valid(self):
        params = BRMParams()
        assert 0 <= params.bias <= 1

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            BRMParams(migrate_period_ticks=0)

    def test_invalid_bias_rejected(self):
        with pytest.raises(ValueError):
            BRMParams(bias=1.5)


class TestPenaltyMaintenance:
    def test_penalties_updated_for_running_vcpus(self):
        machine, _ = build()
        machine.run(max_time_s=0.3)
        assert any(v.uncore_penalty > 0 for v in machine.vcpus)

    def test_penalty_bounded_zero_one(self):
        machine, _ = build()
        machine.run(max_time_s=0.5)
        for vcpu in machine.vcpus:
            assert 0.0 <= vcpu.uncore_penalty <= 1.0

    def test_lock_cost_charged_per_update(self):
        machine, policy = build()
        machine.run(max_time_s=0.3)
        assert policy.lock.acquisitions > 0
        assert machine.overhead_s.get("brm_lock", 0.0) > 0

    def test_lock_contention_grows_with_vcpus(self):
        few, policy_few = build(num_vcpus=4, seed=1)
        many, policy_many = build(num_vcpus=24, seed=1)
        few.run(max_time_s=0.3)
        many.run(max_time_s=0.3)
        assert policy_many.lock.mean_wait_s() > policy_few.lock.mean_wait_s()

    def test_overhead_significant_beyond_threshold(self):
        """The paper's claim: >8 VCPUs makes the lock overhead heavy."""
        machine, _ = build(num_vcpus=24)
        machine.run(max_time_s=0.5)
        assert machine.overhead_fraction() > 0.01  # >1% of busy time


class TestMigrationRounds:
    def test_brm_migrates_frequently(self):
        machine, _ = build()
        machine.run(max_time_s=1.0)
        assert machine.migrations > 10

    def test_migration_rounds_honour_period(self):
        rare_params = BRMParams(migrate_period_ticks=100)
        frequent_params = BRMParams(migrate_period_ticks=3)
        rare, _ = build(brm_params=rare_params, seed=2)
        frequent, _ = build(brm_params=frequent_params, seed=2)
        rare.run(max_time_s=1.0)
        frequent.run(max_time_s=1.0)
        assert frequent.migrations > rare.migrations

    def test_bias_zero_is_fully_random(self):
        machine, policy = build(brm_params=BRMParams(bias=0.0), seed=3)
        machine.run(max_time_s=0.5)
        # Still migrates, just without the greedy component.
        assert machine.migrations > 0

    def test_collects_pmu(self):
        _, policy = build()
        assert policy.collects_pmu
        assert policy.name == "brm"
