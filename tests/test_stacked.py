"""Lane-stacked grid engine: grouping, stepping, retirement, isolation.

The stacked engine's contract is the repo's signature guarantee taken
cross-run: every lane's summary must be bitwise the solo batched run's.
These tests pin the pieces that make that hold end to end —

* the :class:`~repro.experiments.parallel.ParallelRunner` lane planner
  (what may share a stack, what must not);
* masked stepping and lane retirement (lanes of different lengths
  advance together and retire independently);
* per-lane fault isolation (one lane's
  :class:`~repro.xen.simulator.SimulationTimeout` or crash never
  poisons its stack-mates);
* the cache/journal flow (stacked results land under per-cell keys, so
  warm lookups and ``--resume`` replays are dispatch-shape blind);
* the builder-dedupe dispatch payloads (satellites: fingerprints are
  hashed once per distinct builder, chunks pickle each builder once).
"""

import dataclasses
import json
from functools import partial

import pytest

from repro.cache.store import ResultCache
from repro.experiments.parallel import (
    ParallelRunner,
    _auto_chunksize,
    run_packed_batch_guarded,
    run_stacked_batch_guarded,
)
from repro.experiments.scenarios import (
    ScenarioConfig,
    make_scheduler,
    solo_scenario,
    spec_scenario,
)
from repro.metrics.collectors import summarize
from repro.recovery.deadline import DeadlinePolicy
from repro.recovery.journal import GridJournal
from repro.xen.simulator import SimulationTimeout
from repro.xen.stacked import run_stacked

FAST = ScenarioConfig(work_scale=0.02, seed=0)


def canonical(summary) -> str:
    d = summary.to_dict()
    d.pop("phase_profile", None)
    d.pop("horizon_stats", None)
    return json.dumps(d, sort_keys=True)


def build(app, scheduler, cfg):
    return spec_scenario(app, make_scheduler(scheduler), cfg)


def seed_cells(builder, seeds, schedulers=("credit",), cfg=FAST):
    return [
        (builder, sched, dataclasses.replace(cfg, seed=seed))
        for seed in seeds
        for sched in schedulers
    ]


# ---------------------------------------------------------------------------
# Lane planner
# ---------------------------------------------------------------------------
def test_planner_groups_seed_variation_into_one_stack():
    runner = ParallelRunner(1, engine="stacked")
    cells = seed_cells(partial(spec_scenario, "lu"), range(5))
    runner.run_cells(cells)
    assert runner.stacks == [[0, 1, 2, 3, 4]]


def test_planner_allows_scheduler_variation_within_a_stack():
    runner = ParallelRunner(1, engine="stacked")
    cells = seed_cells(
        partial(spec_scenario, "lu"), range(2), schedulers=("credit", "vprobe")
    )
    runner.run_cells(cells)
    assert runner.stacks == [[0, 1, 2, 3]]


def test_planner_splits_incompatible_builders_and_configs():
    runner = ParallelRunner(1, engine="stacked")
    lu, soplex = partial(spec_scenario, "lu"), partial(spec_scenario, "soplex")
    scaled = dataclasses.replace(FAST, work_scale=0.03)
    cells = (
        seed_cells(lu, range(2))
        + seed_cells(soplex, range(2))
        + seed_cells(lu, range(2), cfg=scaled)
    )
    runner.run_cells(cells)
    assert runner.stacks == [[0, 1], [2, 3], [4, 5]]


def test_planner_caps_stacks_and_leaves_singletons_per_cell():
    runner = ParallelRunner(1, engine="stacked", stack_lanes=4)
    cells = seed_cells(partial(spec_scenario, "lu"), range(5))
    runner.run_cells(cells)
    # 5 lanes at cap 4: one full stack, the trailing singleton falls
    # back to the per-cell path rather than paying kernel framing.
    assert runner.stacks == [[0, 1, 2, 3]]


def test_stack_lanes_one_disables_stacking():
    runner = ParallelRunner(1, engine="stacked", stack_lanes=1)
    cells = seed_cells(partial(spec_scenario, "lu"), range(3))
    results = runner.run_cells(cells)
    assert runner.stacks == []
    assert all(r is not None for r in results)


def test_anonymous_builders_stack_by_object_identity():
    anon = lambda policy, cfg: spec_scenario("lu", policy, cfg)  # noqa: E731
    other = lambda policy, cfg: spec_scenario("lu", policy, cfg)  # noqa: E731
    runner = ParallelRunner(1, engine="stacked")
    cells = seed_cells(anon, range(2)) + seed_cells(other, range(2))
    results = runner.run_cells(cells)
    # Unprovable identities never merge across objects, but one object
    # still stacks against itself.
    assert runner.stacks == [[0, 1], [2, 3]]
    assert results[0] == results[2] and results[1] == results[3]


# ---------------------------------------------------------------------------
# Stepping, retirement, parity
# ---------------------------------------------------------------------------
def test_lanes_of_different_lengths_retire_independently():
    """Masked stepping: a short lane retires while long lanes continue."""
    cfgs = [
        dataclasses.replace(FAST, seed=s, engine="stacked", work_scale=ws)
        for s, ws in ((0, 0.01), (1, 0.04), (2, 0.02))
    ]
    solo = []
    for cfg in cfgs:
        machine = build("lu", "vprobe", dataclasses.replace(cfg, engine="batched"))
        machine.run()
        solo.append(canonical(summarize(machine)))
    lanes = run_stacked([build("lu", "vprobe", cfg) for cfg in cfgs])
    assert all(lane.ok for lane in lanes)
    assert [canonical(summarize(lane.result.machine)) for lane in lanes] == solo


def test_mid_run_cut_is_bitwise_neutral():
    """Stopping a stack at an epoch boundary and restacking it later
    yields the solo single-shot summary — the property that makes
    checkpoint/resume dispatch-shape blind."""
    machines = [
        build("lu", "credit", dataclasses.replace(FAST, seed=s, engine="stacked"))
        for s in range(3)
    ]
    cut = [lane.ok for lane in run_stacked(machines, max_time_s=0.2)]
    assert all(cut)
    lanes = run_stacked(machines)
    assert all(lane.ok for lane in lanes)
    for seed, lane in enumerate(lanes):
        machine = build(
            "lu", "credit", dataclasses.replace(FAST, seed=seed, engine="batched")
        )
        machine.run()
        assert canonical(summarize(lane.result.machine)) == canonical(
            summarize(machine)
        )


def test_runner_stacked_matches_batched_per_cell():
    cells = seed_cells(
        partial(spec_scenario, "soplex"),
        range(3),
        schedulers=("credit", "vprobe"),
    )
    base = ParallelRunner(1, engine="batched").run_cells(cells)
    stacked = ParallelRunner(1, engine="stacked").run_cells(cells)
    assert stacked == base


def test_pooled_dispatch_matches_serial():
    cells = seed_cells(partial(spec_scenario, "lu"), range(4))
    serial = ParallelRunner(1, engine="stacked").run_cells(cells)
    pooled_runner = ParallelRunner(2, engine="stacked", stack_lanes=2)
    pooled = pooled_runner.run_cells(cells)
    assert len(pooled_runner.stacks) == 2
    assert pooled == serial


# ---------------------------------------------------------------------------
# Per-lane isolation and quarantine
# ---------------------------------------------------------------------------
def test_one_lane_timeout_never_poisons_stack_mates():
    cfgs = [
        dataclasses.replace(FAST, seed=s, engine="stacked") for s in range(3)
    ]
    cfgs[1] = dataclasses.replace(cfgs[1], max_epochs=10, label="doomed lane")
    lanes = run_stacked([build("lu", "credit", cfg) for cfg in cfgs])
    assert isinstance(lanes[1].error, SimulationTimeout)
    for seed in (0, 2):
        machine = build(
            "lu", "credit", dataclasses.replace(FAST, seed=seed, engine="batched")
        )
        machine.run()
        assert lanes[seed].ok
        assert canonical(summarize(lanes[seed].result.machine)) == canonical(
            summarize(machine)
        )


def test_runner_quarantines_timed_out_stack_lanes():
    cfg = dataclasses.replace(FAST, work_scale=0.05, max_epochs=10)
    cells = seed_cells(partial(spec_scenario, "lu"), range(3), cfg=cfg)
    runner = ParallelRunner(1, engine="stacked")
    results = runner.run_cells(cells)
    assert results == [None, None, None]
    assert len(runner.quarantined) == 3
    assert all(q.reason == "sim_timeout" for q in runner.quarantined)


def test_stack_deadline_overrun_falls_back_to_per_cell_strikes():
    cells = seed_cells(partial(spec_scenario, "lu"), range(2))
    runner = ParallelRunner(
        1,
        engine="stacked",
        deadline=DeadlinePolicy(deadline_s=1e-4, max_strikes=1, backoff_base_s=0.0),
    )
    results = runner.run_cells(cells)
    assert results == [None, None]
    assert all(q.reason == "deadline" for q in runner.quarantined)


def test_worker_stack_entry_reports_per_lane_outcomes():
    cfgs = [
        dataclasses.replace(FAST, seed=s, engine="stacked") for s in range(2)
    ]
    cfgs[1] = dataclasses.replace(cfgs[1], max_epochs=10)
    builder = partial(spec_scenario, "lu")
    outcomes = run_stacked_batch_guarded(
        [(builder, "credit", cfg) for cfg in cfgs]
    )
    assert outcomes[0][0] == "ok"
    assert outcomes[1][0] == "timeout"
    assert outcomes[1][1][0] == "SimulationTimeout"


# ---------------------------------------------------------------------------
# Cache / journal / resume
# ---------------------------------------------------------------------------
def test_stacked_results_hit_cache_under_per_cell_keys(tmp_path):
    cells = seed_cells(partial(spec_scenario, "lu"), range(3))
    cold = ParallelRunner(1, cache=ResultCache(tmp_path), engine="stacked")
    first = cold.run_cells(cells)
    assert cold.cache_misses == 3 and cold.stacks == [[0, 1, 2]]
    # Warm pass on the *per-cell batched* engine: the keys must be the
    # same (stacking cannot leak into cache identity).
    warm = ParallelRunner(1, cache=ResultCache(tmp_path), engine="batched")
    second = warm.run_cells(cells)
    assert warm.cache_hits == 3 and warm.cache_misses == 0
    assert second == first


def test_stacked_cells_journal_and_resume(tmp_path):
    cells = seed_cells(partial(spec_scenario, "lu"), range(3))
    journal = GridJournal(tmp_path / "journal.jsonl")
    runner = ParallelRunner(1, engine="stacked", journal=journal)
    first = runner.run_cells(cells)

    resumed = GridJournal(tmp_path / "journal.jsonl", resume=True)
    replay = ParallelRunner(1, engine="stacked", journal=resumed)
    second = replay.run_cells(cells)
    assert replay.journal_hits == 3 and replay.stacks == []
    assert second == first


# ---------------------------------------------------------------------------
# Dispatch payloads (builder dedupe satellites)
# ---------------------------------------------------------------------------
def test_builder_fingerprint_hashed_once_per_grid(tmp_path, monkeypatch):
    import repro.cache.keys as keys

    calls = []
    real = keys.builder_fingerprint

    def counting(builder):
        calls.append(builder)
        return real(builder)

    monkeypatch.setattr(keys, "builder_fingerprint", counting)
    builder = partial(solo_scenario, "lu")
    cells = seed_cells(builder, range(4), schedulers=("credit", "vprobe"))
    runner = ParallelRunner(1, cache=ResultCache(tmp_path), engine="stacked")
    runner.run_cells(cells)
    assert len(calls) == 1


def test_packed_chunks_ship_each_distinct_builder_once():
    # Distinct-but-equal partials, as the figure modules create them:
    # the packed payload must collapse them onto one instance.
    cells = [
        (partial(solo_scenario, "lu"), "credit", dataclasses.replace(FAST, seed=s))
        for s in range(3)
    ]
    runner = ParallelRunner(1)
    builders, packed = runner._pack_chunk(cells, [0, 1, 2])
    assert len(builders) == 1
    assert [slot for slot, _, _ in packed] == [0, 0, 0]
    outcomes = run_packed_batch_guarded(builders, packed)
    expected = ParallelRunner(1).run_cells(cells)
    assert [payload for status, payload in outcomes] == expected
    assert all(status == "ok" for status, _ in outcomes)


def test_auto_chunksize_targets_two_chunks_per_worker():
    assert _auto_chunksize(64, 2) == 16
    assert _auto_chunksize(8, 8) == 1
    assert _auto_chunksize(1000, 4) == 64  # capped
    assert _auto_chunksize(1, 1) == 1
