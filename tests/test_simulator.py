"""Tests for repro.xen.simulator: engine invariants."""

import pytest

from repro.hardware.topology import xeon_e5620
from repro.util.rng import RngStreams
from repro.workloads.appmodel import VcpuWorkload
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_single_node, place_split
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuState

GIB = 1024**3


def machine_with(profile, num_vcpus=2, seed=0, max_time=10.0, pins=None, **cfg):
    topo = xeon_e5620()
    machine = Machine(
        topo, CreditScheduler(), SimConfig(seed=seed, max_time_s=max_time, **cfg)
    )
    domain = Domain.homogeneous(
        "vm", 1 * GIB, place_split(num_vcpus, 2), profile, num_vcpus
    )
    if pins is not None:
        domain.pinned_pcpus = pins
    machine.add_domain(domain)
    return machine


class TestConfig:
    def test_epoch_must_divide_tick(self):
        topo = xeon_e5620()
        with pytest.raises(ValueError, match="divide"):
            Machine(topo, CreditScheduler(), SimConfig(epoch_s=3e-3))

    def test_duplicate_domain_names_rejected(self):
        machine = machine_with(synthetic_profile("llc-fr"))
        with pytest.raises(ValueError):
            machine.add_domain(
                Domain.homogeneous(
                    "vm", 1 * GIB, place_split(1, 2), synthetic_profile("llc-fr"), 1
                )
            )

    def test_placement_node_count_must_match(self):
        machine = machine_with(synthetic_profile("llc-fr"))
        bad = Domain.homogeneous(
            "other", 1 * GIB, place_single_node(1, 3, 0),
            synthetic_profile("llc-fr"), 1, first_touch_init=False,
        ) if False else Domain(
            "other",
            1 * GIB,
            place_single_node(1, 3, 0),
            [
                VcpuWorkload(
                    synthetic_profile("llc-fr"),
                    RngStreams(0).get("w"),
                )
            ],
            first_touch_init=False,
        )
        with pytest.raises(ValueError, match="nodes"):
            machine.add_domain(bad)


class TestCompletion:
    def test_finite_workload_completes_and_stops(self):
        profile = synthetic_profile("llc-fr", total_instructions=5e8, with_phases=False)
        machine = machine_with(profile, num_vcpus=1)
        result = machine.run()
        assert result.completed
        assert result.sim_time_s < machine.config.max_time_s
        vcpu = machine.vcpus[0]
        assert vcpu.state is VcpuState.DONE
        assert vcpu.finish_time == pytest.approx(result.sim_time_s, abs=0.01)

    def test_instruction_conservation(self):
        """PMU instructions must equal the workload's completed work."""
        total = 4e8
        profile = synthetic_profile("llc-fr", total_instructions=total, with_phases=False)
        machine = machine_with(profile, num_vcpus=2)
        machine.run()
        for vcpu in machine.vcpus:
            assert machine.pmu.totals(vcpu.key).instructions == pytest.approx(total)

    def test_timeout_reports_incomplete(self):
        profile = synthetic_profile("llc-fr", total_instructions=1e14)
        machine = machine_with(profile, num_vcpus=1, max_time=0.05)
        result = machine.run()
        assert not result.completed
        assert result.sim_time_s == pytest.approx(0.05)

    def test_finish_time_lookup(self):
        profile = synthetic_profile("llc-fr", total_instructions=2e8, with_phases=False)
        machine = machine_with(profile, num_vcpus=1)
        result = machine.run()
        assert result.finish_time("vm") == pytest.approx(result.sim_time_s, abs=0.01)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        profile = synthetic_profile("llc-fi", total_instructions=3e8)
        a = machine_with(profile, num_vcpus=4, seed=5)
        b = machine_with(profile, num_vcpus=4, seed=5)
        ra, rb = a.run(), b.run()
        assert ra.sim_time_s == rb.sim_time_s
        assert a.migrations == b.migrations
        assert a.context_switches == b.context_switches

    def test_different_seed_different_placement(self):
        profile = synthetic_profile("llc-fi", total_instructions=3e8)
        outcomes = set()
        for seed in range(4):
            m = machine_with(profile, num_vcpus=4, seed=seed)
            outcomes.add(tuple(v.pcpu for v in m.vcpus))
        assert len(outcomes) > 1


class TestFirstTouch:
    def test_first_touch_rehomes_slices(self):
        profile = synthetic_profile("llc-fi")
        machine = machine_with(profile, num_vcpus=2, pins=[0, 4])
        domain = machine.domains[0]
        assert domain.placement.home_node(0) == 0
        assert domain.placement.home_node(1) == 1

    def test_first_touch_can_be_disabled(self):
        topo = xeon_e5620()
        machine = Machine(topo, CreditScheduler(), SimConfig(seed=0))
        domain = Domain(
            "vm",
            1 * GIB,
            place_single_node(1, 2, node=1),
            [VcpuWorkload(synthetic_profile("llc-fi"), RngStreams(0).get("w"))],
            pinned_pcpus=[0],
            first_touch_init=False,
        )
        machine.add_domain(domain)
        assert domain.placement.home_node(0) == 1


class TestOverheadPlumbing:
    def test_charged_overhead_reduces_progress(self):
        profile = synthetic_profile("llc-fr", total_instructions=None, with_phases=False)
        clean = machine_with(profile, num_vcpus=1, pins=[0])
        taxed = machine_with(profile, num_vcpus=1, pins=[0])
        # Steal 50% of pcpu 0's time via overhead.
        for _ in range(200):
            taxed.pcpus[0].charge_overhead(0.5e-3)
            taxed._step_epoch()
            clean._step_epoch()
        done_taxed = taxed.pmu.totals(0).instructions
        done_clean = clean.pmu.totals(0).instructions
        assert done_taxed < 0.7 * done_clean
        assert taxed.busy_time_s == pytest.approx(clean.busy_time_s)

    def test_overhead_fraction_metric(self):
        profile = synthetic_profile("llc-fr")
        machine = machine_with(profile, num_vcpus=1)
        machine.run(max_time_s=0.1)
        machine.charge_overhead("test", machine.pcpus[0], 1e-3)
        assert machine.overhead_s["test"] == pytest.approx(1e-3)
        assert machine.overhead_fraction() > 0


class TestBlocking:
    def test_blocking_vcpu_cycles_states(self):
        profile = synthetic_profile("llc-fr", total_instructions=None).with_overrides(
            blocking=None
        )
        from repro.workloads.appmodel import BlockingSpec

        blocky = profile.with_overrides(
            blocking=BlockingSpec(run_burst_s=0.005, block_s=0.005)
        )
        machine = machine_with(blocky, num_vcpus=1)
        machine.run(max_time_s=0.5)
        # The single VCPU must have both run and blocked.
        assert machine.pmu.totals(0).instructions > 0
        assert machine.context_switches > 5
