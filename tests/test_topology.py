"""Tests for repro.hardware.topology, including the Table I constants."""

import pytest

from repro.hardware.topology import (
    GIB,
    MIB,
    NodeSpec,
    NUMATopology,
    symmetric_topology,
    xeon_e5620,
)


class TestTableIConstants:
    """The default host must encode the paper's Table I."""

    def test_two_sockets_of_four_cores(self):
        topo = xeon_e5620()
        assert topo.num_nodes == 2
        assert topo.num_pcpus == 8
        assert all(n.num_pcpus == 4 for n in topo.nodes)

    def test_clock_frequency(self):
        assert all(n.clock_hz == pytest.approx(2.40e9) for n in xeon_e5620().nodes)

    def test_llc_is_12_mib_per_socket(self):
        assert all(n.llc_bytes == 12 * MIB for n in xeon_e5620().nodes)

    def test_memory_12_gib_per_node(self):
        topo = xeon_e5620()
        assert all(n.memory_bytes == 12 * GIB for n in topo.nodes)
        assert topo.total_memory_bytes == 24 * GIB

    def test_two_qpi_links(self):
        assert xeon_e5620().qpi_links == 2


class TestTopologyShape:
    def test_pcpu_node_mapping(self):
        topo = xeon_e5620()
        assert [topo.node_of_pcpu(p) for p in range(8)] == [0] * 4 + [1] * 4

    def test_pcpus_of_node(self):
        topo = xeon_e5620()
        assert topo.pcpus_of_node(0) == (0, 1, 2, 3)
        assert topo.pcpus_of_node(1) == (4, 5, 6, 7)

    def test_peer_pcpus_excludes_self(self):
        topo = xeon_e5620()
        assert topo.peer_pcpus(1) == (0, 2, 3)

    def test_remote_nodes(self):
        topo = symmetric_topology(4, 2)
        assert topo.remote_nodes(2) == (0, 1, 3)

    def test_distance_matrix(self):
        topo = xeon_e5620()
        assert topo.distance(0, 0) == 0
        assert topo.distance(0, 1) == 1
        assert topo.distance(1, 0) == 1

    def test_same_node(self):
        topo = xeon_e5620()
        assert topo.same_node(0, 3)
        assert not topo.same_node(3, 4)

    def test_out_of_range_pcpu_rejected(self):
        with pytest.raises(ValueError):
            xeon_e5620().node_of_pcpu(8)

    def test_describe_mentions_nodes(self):
        text = xeon_e5620().describe()
        assert "node 0" in text and "node 1" in text


class TestConstruction:
    def test_nodes_must_be_in_id_order(self):
        spec = dict(num_pcpus=1, llc_bytes=1 * MIB, memory_bytes=1 * GIB,
                    imc_bandwidth=1e9, clock_hz=1e9)
        nodes = [NodeSpec(node_id=1, **spec), NodeSpec(node_id=0, **spec)]
        with pytest.raises(ValueError):
            NUMATopology(nodes)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NUMATopology([])

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec(0, 1, 1 * MIB, 1 * GIB, -1.0, 1e9)

    def test_symmetric_topology_shape(self):
        topo = symmetric_topology(3, 2, llc_mib=8)
        assert topo.num_nodes == 3
        assert topo.num_pcpus == 6
        assert topo.nodes[2].llc_bytes == 8 * MIB

    def test_symmetric_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            symmetric_topology(0, 2)

    def test_memory_pages(self):
        node = xeon_e5620().nodes[0]
        assert node.memory_pages == 12 * GIB // 4096
