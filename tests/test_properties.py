"""Cross-cutting property tests of the machine engine.

Hypothesis drives random small configurations through the full stack
and checks conservation laws no scheduler may violate:

* instructions retired (PMU) == instructions completed (workloads);
* accesses split exactly into local + remote;
* busy time never exceeds wall time x PCPUs;
* every finite workload that completed has a finish time within the run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import make_scheduler
from repro.hardware.topology import xeon_e5620
from repro.metrics.collectors import summarize
from repro.workloads.generators import synthetic_profile
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

GIB = 1024**3

machine_configs = st.fixed_dictionaries(
    {
        "scheduler": st.sampled_from(["credit", "vprobe", "vcpu-p", "lb", "brm"]),
        "llc_class": st.sampled_from(["llc-fr", "llc-fi", "llc-t"]),
        "num_vcpus": st.integers(min_value=1, max_value=6),
        "seed": st.integers(min_value=0, max_value=2**16),
    }
)


def build(scheduler, llc_class, num_vcpus, seed):
    machine = Machine(
        xeon_e5620(),
        make_scheduler(scheduler),
        SimConfig(seed=seed, sample_period_s=0.1, max_time_s=2.0),
    )
    profile = synthetic_profile(llc_class, total_instructions=2e7)
    machine.add_domain(
        Domain.homogeneous("vm", 1 * GIB, place_split(num_vcpus, 2), profile, num_vcpus)
    )
    return machine


@settings(max_examples=15, deadline=None)
@given(machine_configs)
def test_engine_conservation_laws(config):
    machine = build(**config)
    result = machine.run()
    stats = summarize(machine).domain("vm")

    # Instruction conservation: PMU totals == workload progress.
    done = sum(w.instructions_done for w in machine.domains[0].workloads)
    assert stats.instructions == pytest.approx(done, rel=1e-9)

    # Access accounting closes.
    assert stats.total_accesses == pytest.approx(
        stats.local_accesses + stats.remote_accesses
    )
    assert 0.0 <= stats.remote_ratio <= 1.0

    # Busy time bounded by wall time x PCPUs.
    assert machine.busy_time_s <= result.sim_time_s * len(machine.pcpus) + 1e-9

    # Completed workloads have in-range finish times.
    for vcpu in machine.vcpus:
        if vcpu.finish_time is not None:
            assert 0.0 < vcpu.finish_time <= result.sim_time_s + 1e-9


@settings(max_examples=10, deadline=None)
@given(
    st.sampled_from(["credit", "vprobe"]),
    st.integers(min_value=0, max_value=2**16),
)
def test_no_vcpu_is_lost(scheduler, seed):
    """At any stopping point, every VCPU is exactly one of: running on
    one PCPU, queued on one PCPU, blocked, or done."""
    machine = build(scheduler, "llc-fi", 6, seed)
    machine.run(max_time_s=0.35)

    running = [p.current for p in machine.pcpus if p.current is not None]
    assert len(running) == len(set(id(v) for v in running))

    queued = [v for p in machine.pcpus for v in p.queue]
    assert len(queued) == len(set(id(v) for v in queued))
    assert not (set(id(v) for v in running) & set(id(v) for v in queued))

    for vcpu in machine.vcpus:
        in_running = any(v is vcpu for v in running)
        in_queue = any(v is vcpu for v in queued)
        if vcpu.state.value == "running":
            assert in_running and not in_queue
        elif vcpu.state.value == "runnable":
            assert in_queue and not in_running
        else:  # blocked or done
            assert not in_running and not in_queue
