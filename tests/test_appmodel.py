"""Tests for repro.workloads.appmodel."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.appmodel import (
    ApplicationProfile,
    BlockingSpec,
    PhaseSpec,
    VcpuWorkload,
)

MIB = 1024**2


def profile(**overrides):
    base = dict(
        name="app",
        cpi_base=1.0,
        rpti=10.0,
        working_set_bytes=8 * MIB,
        min_miss_rate=0.05,
        max_miss_rate=0.8,
        total_instructions=1e9,
    )
    base.update(overrides)
    return ApplicationProfile(**base)


class TestBlockingSpec:
    def test_duty_cycle(self):
        spec = BlockingSpec(run_burst_s=0.03, block_s=0.01)
        assert spec.duty_cycle == pytest.approx(0.75)

    def test_zero_block_allowed(self):
        assert BlockingSpec(run_burst_s=0.01, block_s=0.0).duty_cycle == 1.0

    def test_zero_run_rejected(self):
        with pytest.raises(ValueError):
            BlockingSpec(run_burst_s=0.0, block_s=0.01)


class TestApplicationProfile:
    def test_refs_per_instruction(self):
        assert profile(rpti=15.0).refs_per_instruction == pytest.approx(0.015)

    def test_cache_demand_reflects_multipliers(self):
        p = profile()
        d = p.cache_demand(ws_multiplier=2.0, intensity_multiplier=0.5)
        assert d.working_set_bytes == pytest.approx(16 * MIB)
        assert d.intensity == pytest.approx(0.01 * 0.5)

    def test_with_overrides(self):
        p = profile().with_overrides(rpti=99.0)
        assert p.rpti == 99.0
        assert p.name == "app"

    def test_is_finite(self):
        assert profile().is_finite
        assert not profile(total_instructions=None).is_finite

    def test_invalid_miss_rates_rejected(self):
        with pytest.raises(ValueError):
            profile(min_miss_rate=0.9, max_miss_rate=0.1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            profile(name="")

    def test_negative_touch_rate_rejected(self):
        with pytest.raises(ValueError):
            profile(touch_rate=-0.1)


class TestVcpuWorkloadProgress:
    def test_advance_and_done(self):
        w = VcpuWorkload(profile(total_instructions=100.0), np.random.default_rng(0))
        w.advance(60.0)
        assert not w.done
        assert w.remaining_instructions == pytest.approx(40.0)
        w.advance(40.0)
        assert w.done

    def test_unbounded_never_done(self):
        w = VcpuWorkload(profile(total_instructions=None), np.random.default_rng(0))
        w.advance(1e15)
        assert not w.done
        assert w.remaining_instructions == float("inf")

    def test_negative_advance_rejected(self):
        w = VcpuWorkload(profile(), np.random.default_rng(0))
        with pytest.raises(ValueError):
            w.advance(-1.0)

    def test_slice_bounds_checked(self):
        with pytest.raises(ValueError):
            VcpuWorkload(profile(), np.random.default_rng(0), slice_id=3, num_slices=2)


class TestPhases:
    def test_no_phase_spec_means_no_changes(self):
        w = VcpuWorkload(profile(phase=None), np.random.default_rng(0))
        assert not w.maybe_phase_change(1e9)
        assert w.ws_multiplier == 1.0

    def test_phase_change_applies_jitter(self):
        spec = PhaseSpec(mean_duration_s=0.1, ws_jitter=0.5, intensity_jitter=0.5, rotate_prob=0.0)
        w = VcpuWorkload(profile(phase=spec), np.random.default_rng(1))
        changed = False
        t = 0.0
        for _ in range(200):
            t += 0.1
            changed |= w.maybe_phase_change(t)
        assert changed
        assert 0.5 <= w.ws_multiplier <= 1.5

    def test_rotation_changes_slice(self):
        spec = PhaseSpec(mean_duration_s=0.05, rotate_prob=1.0)
        w = VcpuWorkload(profile(phase=spec), np.random.default_rng(2), slice_id=0, num_slices=4)
        t = 0.0
        seen = {w.slice_id}
        for _ in range(100):
            t += 0.1
            w.maybe_phase_change(t)
            seen.add(w.slice_id)
        assert len(seen) > 1
        assert all(0 <= s < 4 for s in seen)

    def test_not_due_before_first_deadline(self):
        spec = PhaseSpec(mean_duration_s=100.0)
        w = VcpuWorkload(profile(phase=spec), np.random.default_rng(3))
        assert not w.maybe_phase_change(0.001)


class TestBlockingDraws:
    def test_cpu_bound_never_blocks(self):
        w = VcpuWorkload(profile(blocking=None), np.random.default_rng(0))
        assert w.draw_run_burst() == float("inf")
        assert w.draw_block_time() == 0.0

    def test_blocking_draws_positive(self):
        spec = BlockingSpec(run_burst_s=0.05, block_s=0.01)
        w = VcpuWorkload(profile(blocking=spec), np.random.default_rng(0))
        bursts = [w.draw_run_burst() for _ in range(50)]
        blocks = [w.draw_block_time() for _ in range(50)]
        assert all(b > 0 for b in bursts)
        assert all(b >= 0 for b in blocks)
        assert np.mean(bursts) == pytest.approx(0.05, rel=0.5)

    @given(st.integers(min_value=0, max_value=2**31))
    def test_draws_deterministic_per_seed(self, seed):
        spec = BlockingSpec(run_burst_s=0.05, block_s=0.01)
        a = VcpuWorkload(profile(blocking=spec), np.random.default_rng(seed))
        b = VcpuWorkload(profile(blocking=spec), np.random.default_rng(seed))
        assert a.draw_run_burst() == b.draw_run_burst()
