"""Tests for repro.workloads.services: load-dependent service models."""

import pytest

from repro.core.classify import Bounds, classify
from repro.workloads.services import (
    MEMCACHED_INSTR_PER_OP,
    REDIS_INSTR_PER_OP,
    memcached_profile,
    redis_profile,
)


class TestMemcachedProfile:
    def test_working_set_grows_with_concurrency(self):
        low = memcached_profile(16).working_set_bytes
        high = memcached_profile(112).working_set_bytes
        assert high > low

    def test_low_concurrency_fits_llc(self):
        assert memcached_profile(16).working_set_bytes < 12 * 1024**2

    def test_high_concurrency_thrashes_llc(self):
        assert memcached_profile(112).working_set_bytes > 12 * 1024**2

    def test_duty_cycle_grows_then_saturates(self):
        duties = [memcached_profile(c).blocking.duty_cycle for c in (16, 48, 80, 112)]
        assert duties[0] < duties[1]
        assert duties[-1] == pytest.approx(duties[-2], rel=0.05)

    def test_run_bursts_lengthen_with_load(self):
        low = memcached_profile(16).blocking.run_burst_s
        high = memcached_profile(112).blocking.run_burst_s
        assert high > low

    def test_total_work_encodes_ops(self):
        profile = memcached_profile(64, total_ops=1000.0)
        assert profile.total_instructions == pytest.approx(
            1000.0 * MEMCACHED_INSTR_PER_OP
        )

    def test_memory_intensive_classification(self):
        for conc in (16, 64, 112):
            vtype = classify(memcached_profile(conc).rpti, Bounds())
            assert vtype.memory_intensive, conc

    def test_invalid_concurrency_rejected(self):
        with pytest.raises(ValueError):
            memcached_profile(0)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            memcached_profile(16, workers=0)


class TestRedisProfile:
    def test_working_set_grows_with_connections(self):
        assert (
            redis_profile(10000).working_set_bytes
            > redis_profile(2000).working_set_bytes
        )

    def test_all_swept_points_memory_intensive(self):
        for conn in (2000, 4000, 6000, 8000, 10000):
            vtype = classify(redis_profile(conn).rpti, Bounds())
            assert vtype.memory_intensive, conn

    def test_total_work_encodes_requests(self):
        profile = redis_profile(2000, total_requests=500.0)
        assert profile.total_instructions == pytest.approx(500.0 * REDIS_INSTR_PER_OP)

    def test_saturated_at_published_connection_counts(self):
        # 2000+ connections saturate a single-threaded server.
        assert redis_profile(2000).blocking.duty_cycle == pytest.approx(0.95)

    def test_invalid_connections_rejected(self):
        with pytest.raises(ValueError):
            redis_profile(-5)

    def test_profile_names_distinguish_load(self):
        assert redis_profile(2000).name != redis_profile(4000).name
