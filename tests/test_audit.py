"""Tests for repro.audit: invariants, fuzzing, metamorphic, shrinking.

The mutation-detection tests are the audit layer's own audit: each one
corrupts live machine state in a way a real bookkeeping bug would and
asserts the matching invariant fires.  A checker that passes clean runs
but also passes corrupted ones would be decorative.
"""

import json
import pickle

import pytest

from repro.audit import (
    ENGINES,
    INVARIANT_NAMES,
    DifferentialResult,
    FuzzScenario,
    InvariantChecker,
    InvariantViolation,
    build_fuzz_machine,
    generate_scenario,
    repro_source,
    run_audit,
    run_differential,
    run_metamorphic,
    shrink,
    state_digest,
)
from repro.obs.schema import AUDIT_SCHEMA, validate_audit_report
from repro.xen.vcpu import VcpuState


def tiny_scenario(**overrides):
    """A scenario small enough to run under every engine in tests."""
    base = dict(
        seed=3,
        num_nodes=2,
        pcpus_per_node=2,
        scheduler="credit",
        profiles=("hungry",),
        vcpus=(4,),
        active=(4,),
        placements=("split",),
        work_scale=0.05,
        sample_period_s=0.25,
        max_time_s=0.3,
    )
    base.update(overrides)
    return FuzzScenario(**base)


def warm_machine(scenario=None, engine="reference", max_time_s=0.1):
    """A machine partway through a run, ready to be corrupted."""
    machine = build_fuzz_machine(scenario or tiny_scenario(), engine)
    machine.run(max_time_s=max_time_s)
    return machine


def expect_violation(invariant, fn):
    with pytest.raises(InvariantViolation) as excinfo:
        fn()
    err = excinfo.value
    assert err.invariant == invariant
    assert err.digest and err.engine
    return err


class TestCheckerConfig:
    def test_unknown_invariant_rejected(self):
        with pytest.raises(ValueError, match="unknown invariant"):
            InvariantChecker(enabled=("placement", "no-such-check"))

    def test_invalid_cadence_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(every=0)

    def test_disabled_subtracts_from_enabled(self):
        checker = InvariantChecker(disabled=("placement", "steal_locality"))
        assert checker.enabled == set(INVARIANT_NAMES) - {
            "placement",
            "steal_locality",
        }

    def test_describe_reports_configuration(self):
        checker = InvariantChecker(enabled=("placement",), every=4)
        desc = checker.describe()
        assert desc == {"enabled": ["placement"], "every": 4, "checks_run": 0}


class TestCleanRuns:
    def test_full_audit_passes_on_clean_run(self):
        machine = build_fuzz_machine(tiny_scenario(), "reference")
        checker = InvariantChecker(every=1)
        machine.run(audit=checker)
        assert checker.checks_run > 0
        assert machine.auditor is checker

    def test_all_invariants_disabled_means_zero_checks(self):
        machine = build_fuzz_machine(tiny_scenario(), "reference")
        checker = InvariantChecker(enabled=(), every=1)
        machine.run(audit=checker)
        assert checker.checks_run == 0

    def test_audit_true_attaches_default_checker(self):
        machine = build_fuzz_machine(tiny_scenario(), "reference")
        machine.run(audit=True)
        assert isinstance(machine.auditor, InvariantChecker)

    def test_audited_run_is_bitwise_identical(self):
        from repro.metrics.collectors import summarize
        from repro.obs.manifest import canonical_dumps

        texts = []
        for audit in (None, InvariantChecker(every=1)):
            machine = build_fuzz_machine(tiny_scenario(), "reference")
            machine.run(audit=audit)
            texts.append(
                canonical_dumps(summarize(machine).to_dict(include_profile=False))
            )
        assert texts[0] == texts[1]

    def test_checkpoint_payload_excludes_auditor(self):
        machine = build_fuzz_machine(tiny_scenario(), "reference")
        machine.run(max_time_s=0.05, audit=True)
        restored = pickle.loads(pickle.dumps(machine))
        assert restored.auditor is None
        assert machine.auditor is not None  # the live machine keeps its checker

    def test_checker_rebinds_across_machines(self):
        """One checker auditing two runs must not leak conservation
        history from the first machine into the second."""
        checker = InvariantChecker(every=1)
        warm = build_fuzz_machine(tiny_scenario(), "reference")
        warm.run(audit=checker)
        after_first = checker.checks_run
        second = build_fuzz_machine(tiny_scenario(seed=9), "reference")
        second.run(audit=checker)  # would raise if history leaked
        assert checker.checks_run > after_first


class TestMutationDetection:
    """Every invariant must catch the corruption it exists for."""

    def test_placement_catches_non_running_current(self):
        machine = warm_machine()
        checker = InvariantChecker(every=1)
        victim = next(p.current for p in machine.pcpus if p.current is not None)
        victim.state = VcpuState.BLOCKED
        expect_violation("placement", lambda: checker.after_schedule(machine))

    def test_placement_catches_double_queueing(self):
        machine = warm_machine(tiny_scenario(vcpus=(6,), active=(6,)))
        checker = InvariantChecker(every=1)
        queued = next(v for p in machine.pcpus for v in p.queue)
        other = next(p for p in machine.pcpus if queued not in p.queue)
        other.queue.push(queued)
        expect_violation("placement", lambda: checker.after_schedule(machine))

    def test_placement_catches_vanished_runnable(self):
        machine = warm_machine(tiny_scenario(vcpus=(6,), active=(6,)))
        checker = InvariantChecker(enabled=("placement",), every=1)
        queued = next(v for p in machine.pcpus for v in p.queue)
        machine.pcpus[queued.pcpu].queue.remove(queued)
        expect_violation("placement", lambda: checker.after_schedule(machine))

    def test_work_conservation_catches_idle_with_queue(self):
        machine = warm_machine(tiny_scenario(vcpus=(6,), active=(6,)))
        checker = InvariantChecker(enabled=("work_conservation",), every=1)
        loaded = next(p for p in machine.pcpus if p.queue)
        loaded.current = None
        expect_violation(
            "work_conservation", lambda: checker.after_schedule(machine)
        )

    def test_credit_catches_out_of_bounds(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("credit_conservation",), every=1)
        machine.vcpus[0].credits = 1e9
        expect_violation(
            "credit_conservation", lambda: checker.after_epoch(machine, True)
        )

    def test_credit_catches_total_moving_without_tick(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("credit_conservation",), every=1)
        checker.after_epoch(machine, True)  # records the baseline total
        machine.vcpus[0].credits += 50.0  # in bounds, but from nowhere
        expect_violation(
            "credit_conservation", lambda: checker.after_epoch(machine, True)
        )

    def test_pmu_monotone_catches_counter_rollback(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("pmu_monotone",), every=1)
        checker.after_epoch(machine, True)  # records current totals
        bank = machine.pmu.peek(machine.vcpus[0].key)
        bank.instructions -= 1.0
        expect_violation(
            "pmu_monotone", lambda: checker.after_epoch(machine, True)
        )

    def test_pmu_window_catches_detached_base(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("pmu_window",), every=1)
        key = machine.vcpus[0].key
        base = machine.pmu.peek_window_base(key)
        machine.pmu.peek(key).instructions = base.instructions - 1.0
        expect_violation(
            "pmu_window", lambda: checker.after_epoch(machine, True)
        )

    def test_partition_spread_catches_uneven_round(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("partition_spread",))
        expect_violation(
            "partition_spread",
            lambda: checker.check_partition(machine, 1.0, [3, 0], [None] * 3),
        )

    def test_partition_spread_catches_lost_decisions(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("partition_spread",))
        expect_violation(
            "partition_spread",
            lambda: checker.check_partition(machine, 1.0, [1, 1], [None] * 3),
        )

    def test_partition_hook_accepts_even_round(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("partition_spread",))
        checker.check_partition(machine, 1.0, [2, 1], [None] * 3)
        checker.check_partition(machine, 1.0, [0, 0], [])
        assert checker.checks_run == 2

    def test_steal_locality_catches_remote_steal_over_local_work(self):
        machine = build_fuzz_machine(tiny_scenario(vcpus=(4,), active=(4,)), "reference")
        checker = InvariantChecker(enabled=("steal_locality",))
        thief = machine.pcpus[0]
        local_victim = machine.pcpus[1]  # same node as the thief
        cold = machine.vcpus[0]
        stolen = machine.vcpus[1]
        for pcpu in machine.pcpus:
            for v in list(pcpu.queue):
                pcpu.queue.remove(v)
        cold.pcpu = local_victim.pcpu_id
        cold.last_ran_time = -10.0
        local_victim.queue.push(cold)
        stolen.pcpu = machine.topology.pcpus_of_node(1)[0]  # remote victim
        expect_violation(
            "steal_locality",
            lambda: checker.check_steal(
                machine, thief, stolen, 1.0, True, 0.020
            ),
        )

    def test_steal_locality_catches_busy_thief_taking_hot_work(self):
        machine = warm_machine()
        checker = InvariantChecker(enabled=("steal_locality",))
        thief = next(p for p in machine.pcpus if p.current is not None)
        hot = next(v for v in machine.vcpus if v is not thief.current)
        hot.last_ran_time = machine.time
        expect_violation(
            "steal_locality",
            lambda: checker.check_steal(
                machine, thief, hot, machine.time, False, 0.020
            ),
        )

    def test_steal_locality_accepts_local_steal(self):
        machine = build_fuzz_machine(tiny_scenario(), "reference")
        checker = InvariantChecker(enabled=("steal_locality",))
        thief = machine.pcpus[0]
        stolen = machine.vcpus[0]
        stolen.pcpu = machine.pcpus[1].pcpu_id  # same-node victim
        stolen.last_ran_time = -10.0
        checker.check_steal(machine, thief, stolen, 1.0, True, 0.020)
        assert checker.checks_run == 1


class TestStateDigest:
    def test_digest_is_deterministic(self):
        a = build_fuzz_machine(tiny_scenario(), "reference")
        b = build_fuzz_machine(tiny_scenario(), "reference")
        assert state_digest(a) == state_digest(b)

    def test_digest_sees_credit_mutations(self):
        machine = build_fuzz_machine(tiny_scenario(), "reference")
        before = state_digest(machine)
        machine.vcpus[0].credits += 1.0
        assert state_digest(machine) != before


class TestFuzzScenario:
    def test_generator_is_deterministic(self):
        assert generate_scenario(11) == generate_scenario(11)

    def test_json_round_trip(self):
        scenario = generate_scenario(11)
        restored = FuzzScenario.from_dict(
            json.loads(json.dumps(scenario.to_dict()))
        )
        assert restored == scenario

    def test_generated_scenarios_are_well_formed(self):
        for seed in range(20):
            s = generate_scenario(seed)
            assert 1 <= len(s.profiles) <= 3
            assert all(1 <= a <= nv for a, nv in zip(s.active, s.vcpus))
            assert s.fault == "churn" or s.churn_at_s == 0.0

    def test_misaligned_domains_rejected(self):
        with pytest.raises(ValueError, match="vcpus"):
            tiny_scenario(profiles=("hungry", "mcf"))


class TestDifferential:
    def test_clean_scenario_passes(self):
        result = run_differential(tiny_scenario(), engines=("reference", "vector"))
        assert result.ok and result.kind == "ok"
        assert result.checks_run > 0
        assert set(result.summaries) == {"reference", "vector"}
        assert result.summaries["reference"] == result.summaries["vector"]

    def test_divergence_reported_with_first_difference(self, monkeypatch):
        import repro.audit.fuzz as fuzz

        texts = iter(['{"steals": 4}', '{"steals": 5}'])
        monkeypatch.setattr(fuzz, "canonical_dumps", lambda obj: next(texts))
        result = run_differential(tiny_scenario(), engines=("reference", "vector"))
        assert not result.ok
        assert result.kind == "divergence"
        assert result.engine == "vector"
        assert "first difference at char" in result.detail

    def test_invariant_violation_reported(self, monkeypatch):
        import repro.audit.fuzz as fuzz

        class AlwaysFail(InvariantChecker):
            def after_schedule(self, machine):
                self.checks_run += 1
                self._fail(machine, "placement", "forced failure")

        monkeypatch.setattr(
            fuzz, "InvariantChecker", lambda enabled=None, every=1: AlwaysFail()
        )
        result = run_differential(tiny_scenario(), engines=("reference",))
        assert not result.ok
        assert result.kind == "invariant"
        assert result.engine == "reference"
        assert "[placement] forced failure" in result.detail

    def test_crash_reported_as_error(self):
        result = run_differential(
            tiny_scenario(scheduler="no-such-policy"), engines=("reference",)
        )
        assert not result.ok
        assert result.kind == "error"
        assert result.engine == "reference"


def synthetic_check(predicate):
    """A run_differential stand-in failing exactly when predicate holds."""

    def check(scenario):
        if predicate(scenario):
            return DifferentialResult(
                scenario, ok=False, kind="divergence", engine="vector",
                detail="synthetic",
            )
        return DifferentialResult(scenario, ok=True, kind="ok")

    return check


class TestShrink:
    def big_failure(self, check):
        scenario = tiny_scenario(
            num_nodes=4,
            pcpus_per_node=4,
            profiles=("mcf", "hungry", "lu"),
            vcpus=(4, 4, 4),
            active=(4, 4, 4),
            placements=("split", "interleaved", "node3"),
            fault="noisy",
            max_time_s=1.2,
        )
        return check(scenario)

    def test_greedy_shrink_reaches_minimum(self):
        check = synthetic_check(lambda s: len(s.profiles) >= 2)
        shrunk = shrink(self.big_failure(check), check=check)
        s = shrunk.scenario
        assert len(s.profiles) == 2  # dropping to 1 makes it pass
        assert s.fault == "none"
        assert s.max_time_s == 0.2
        assert s.vcpus == (1, 1)
        assert s.num_nodes == 2 and s.pcpus_per_node == 2
        assert all(p == "node0" for p in s.placements)
        assert not shrunk.ok  # still fails the same way

    def test_shrink_respects_budget(self):
        calls = []

        def check(scenario):
            calls.append(scenario)
            return DifferentialResult(
                scenario, ok=False, kind="divergence", engine="vector"
            )

        shrink(self.big_failure(check), budget=3, check=check)
        assert len(calls) <= 4  # the original probe plus the budget

    def test_shrinking_a_pass_is_an_error(self):
        ok = DifferentialResult(tiny_scenario(), ok=True, kind="ok")
        with pytest.raises(ValueError):
            shrink(ok)

    def test_repro_source_is_executable(self):
        check = synthetic_check(lambda s: True)
        failure = check(tiny_scenario())
        src = repro_source(failure, "test_generated_repro")
        assert "FuzzScenario(" in src and "seed=3," in src
        namespace = {
            "FuzzScenario": FuzzScenario,
            "run_differential": lambda s: DifferentialResult(s, True, "ok"),
        }
        exec(compile(src, "<repro>", "exec"), namespace)
        namespace["test_generated_repro"]()  # passes once the bug is fixed
        namespace["run_differential"] = check
        with pytest.raises(AssertionError):
            namespace["test_generated_repro"]()  # fails while it is not


class TestMetamorphic:
    def test_relations_hold_on_tiny_scenario(self):
        results = run_metamorphic(tiny_scenario(), every=8)
        assert [r.relation for r in results] == [
            "relabel",
            "work_scale",
            "node_permutation",
        ]
        for r in results:
            assert r.ok, f"{r.relation}: {r.detail}"
        relabel = results[0]
        assert not relabel.skipped


class TestAuditReport:
    def test_small_campaign_report_validates(self):
        report = run_audit(seeds=2, metamorphic=False, progress=lambda s: None)
        assert report.ok
        assert len(report.results) == 2
        assert report.checks_run > 0
        assert not report.budget_exhausted
        obj = json.loads(report.to_json())
        assert obj["schema"] == AUDIT_SCHEMA
        assert validate_audit_report(obj) == []

    def test_exhausted_budget_is_reported_not_hidden(self):
        report = run_audit(seeds=3, budget_s=-1.0, metamorphic=False)
        assert report.budget_exhausted
        assert report.skipped_seeds == (0, 1, 2)
        assert report.results == ()


class TestCliAudit:
    def test_audit_command_writes_valid_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "audit.json"
        rc = main(
            [
                "audit",
                "--seeds",
                "1",
                "--no-metamorphic",
                "--engines",
                "reference",
                "vector",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "audit:" in capsys.readouterr().out
        assert validate_audit_report(json.loads(out.read_text())) == []
        assert main(["validate", str(out)]) == 0


class TestRunnerIntegration:
    def test_audited_run_one_bypasses_cache(self):
        from repro.experiments import ScenarioConfig, spec_scenario
        from repro.experiments.runner import run_one

        class ExplodingCache:
            def get(self, key):
                raise AssertionError("audited run consulted the cache")

            def put(self, key, value, meta=None):
                raise AssertionError("audited run wrote to the cache")

        cfg = ScenarioConfig(work_scale=0.02, seed=5, max_time_s=0.3)
        builder = lambda policy, c: spec_scenario("lu", policy, c)  # noqa: E731
        summary = run_one(
            builder, "credit", cfg, cache=ExplodingCache(), audit=True
        )
        assert summary.machine_stats.sim_time_s > 0

    def test_compare_with_audit_uses_fresh_checkers(self):
        from repro.experiments import ScenarioConfig, spec_scenario
        from repro.experiments.runner import compare

        cfg = ScenarioConfig(work_scale=0.02, seed=5, max_time_s=0.3)
        builder = lambda policy, c: spec_scenario("lu", policy, c)  # noqa: E731
        results = compare(builder, cfg, schedulers=("credit", "vprobe"), audit=True)
        assert set(results) == {"credit", "vprobe"}
