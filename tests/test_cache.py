"""Tests for repro.hardware.cache: water-filling, miss curves, warmth."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.cache import CacheDemand, CacheModel, LLCState, waterfill_shares

MIB = 1024**2


def demand(ws_mib=8.0, intensity=1.0, min_mr=0.05, max_mr=0.8, shape=1.0):
    return CacheDemand(
        working_set_bytes=ws_mib * MIB,
        intensity=intensity,
        min_miss_rate=min_mr,
        max_miss_rate=max_mr,
        curve_shape=shape,
    )


class TestWaterfill:
    def test_single_item_capped_by_working_set(self):
        allocs = waterfill_shares(12 * MIB, [1.0], [4 * MIB])
        assert allocs[0] == pytest.approx(4 * MIB)

    def test_proportional_split_when_uncapped(self):
        allocs = waterfill_shares(12.0, [1.0, 2.0], [100.0, 100.0])
        assert allocs[0] == pytest.approx(4.0)
        assert allocs[1] == pytest.approx(8.0)

    def test_slack_redistribution(self):
        # First item caps at 2; its slack goes to the second.
        allocs = waterfill_shares(10.0, [1.0, 1.0], [2.0, 100.0])
        assert allocs[0] == pytest.approx(2.0)
        assert allocs[1] == pytest.approx(8.0)

    def test_zero_weight_gets_nothing(self):
        allocs = waterfill_shares(10.0, [0.0, 1.0], [5.0, 5.0])
        assert allocs[0] == 0.0
        assert allocs[1] == pytest.approx(5.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            waterfill_shares(1.0, [1.0], [1.0, 2.0])

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),
                st.floats(min_value=0.0, max_value=50.0),
            ),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=0.1, max_value=100.0),
    )
    def test_invariants(self, items, capacity):
        """Never exceed capacity, never exceed caps, never negative."""
        weights = [w for w, _ in items]
        caps = [c for _, c in items]
        allocs = waterfill_shares(capacity, weights, caps)
        assert all(a >= 0 for a in allocs)
        assert all(a <= c + 1e-6 for a, c in zip(allocs, caps))
        assert sum(allocs) <= capacity + 1e-6

    @given(st.floats(min_value=0.5, max_value=64.0))
    def test_fully_allocates_when_demand_exceeds_capacity(self, cap_scale):
        capacity = 10.0
        caps = [cap_scale * 10, cap_scale * 10]
        allocs = waterfill_shares(capacity, [1.0, 1.0], caps)
        if sum(caps) >= capacity:
            assert sum(allocs) == pytest.approx(capacity, rel=1e-6)


class TestMissRateCurve:
    def test_fully_resident_gives_floor(self):
        d = demand(min_mr=0.1, max_mr=0.9)
        assert d.miss_rate(1.0) == pytest.approx(0.1)

    def test_nothing_resident_gives_ceiling(self):
        d = demand(min_mr=0.1, max_mr=0.9)
        assert d.miss_rate(0.0) == pytest.approx(0.9)

    def test_monotone_decreasing_in_residency(self):
        d = demand(shape=1.3)
        rates = [d.miss_rate(f / 10) for f in range(11)]
        assert all(a >= b for a, b in zip(rates, rates[1:]))

    def test_clamps_out_of_range_inputs(self):
        d = demand()
        assert d.miss_rate(-0.5) == d.miss_rate(0.0)
        assert d.miss_rate(1.5) == d.miss_rate(1.0)

    def test_inverted_rates_rejected(self):
        with pytest.raises(ValueError):
            demand(min_mr=0.9, max_mr=0.1)


class TestLLCState:
    def test_warmth_charges_while_running(self):
        state = LLCState()
        state.advance(0.05, {1: 8 * MIB})
        first = state.warmth(1)
        state.advance(0.05, {1: 8 * MIB})
        assert 0 < first < state.warmth(1) <= 1.0

    def test_warmth_decays_when_absent(self):
        state = LLCState()
        state.advance(0.2, {1: 4 * MIB})
        warm = state.warmth(1)
        state.advance(0.05, {})
        assert state.warmth(1) < warm

    def test_tiny_warmth_entries_dropped(self):
        state = LLCState()
        state.advance(0.01, {1: 4 * MIB})
        state.advance(10.0, {})  # long absence
        assert state.warmth(1) == 0.0
        assert 1 not in state.tracked()

    def test_evict_forgets(self):
        state = LLCState()
        state.advance(0.1, {2: 1 * MIB})
        state.evict(2)
        assert state.warmth(2) == 0.0

    def test_small_working_set_warms_fast(self):
        state = LLCState()
        state.advance(0.005, {1: 256 * 1024})
        assert state.warmth(1) > 0.9


class TestCacheModel:
    def test_solo_fit_reaches_floor_miss_rate(self):
        model = CacheModel(12 * MIB)
        d = demand(ws_mib=8, min_mr=0.05)
        # Warm up.
        for _ in range(200):
            model.advance(0.01, {1: d})
        occ = model.solve({1: d})
        assert occ.miss_rates[1] == pytest.approx(0.05, abs=0.02)

    def test_contention_raises_miss_rate(self):
        model = CacheModel(12 * MIB)
        a, b = demand(ws_mib=10), demand(ws_mib=10)
        for _ in range(200):
            model.advance(0.01, {1: a, 2: b})
        shared = model.solve({1: a, 2: b}).miss_rates[1]

        solo_model = CacheModel(12 * MIB)
        for _ in range(200):
            solo_model.advance(0.01, {1: a})
        solo = solo_model.solve({1: a}).miss_rates[1]
        assert shared > solo

    def test_pressure_reflects_oversubscription(self):
        model = CacheModel(12 * MIB)
        occ = model.solve({1: demand(ws_mib=30)})
        assert occ.pressure == pytest.approx(30 / 12)

    def test_thrashing_workload_high_misses_even_alone(self):
        model = CacheModel(12 * MIB)
        d = demand(ws_mib=36, min_mr=0.45, max_mr=0.9)
        for _ in range(300):
            model.advance(0.01, {1: d})
        occ = model.solve({1: d})
        assert occ.miss_rates[1] > 0.6

    def test_empty_solve(self):
        occ = CacheModel(12 * MIB).solve({})
        assert occ.shares == {} and occ.pressure == 0.0
