"""Tests for repro.core.partition: Algorithm 1 invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.partition import periodical_partition
from repro.hardware.topology import symmetric_topology, xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuType

GIB = 1024**3


def build_machine(type_affinity_pairs, topology=None):
    """A machine whose VCPUs have preset types and affinities.

    ``type_affinity_pairs`` is a list of (VcpuType, affinity_node).
    """
    topo = topology or xeon_e5620()
    machine = Machine(topo, CreditScheduler(), SimConfig(seed=0))
    profile = synthetic_profile("llc-t", total_instructions=None)
    domain = Domain.homogeneous(
        "vm", 1 * GIB, place_split(len(type_affinity_pairs), topo.num_nodes),
        profile, len(type_affinity_pairs),
    )
    machine.add_domain(domain)
    for vcpu, (vtype, affinity) in zip(machine.vcpus, type_affinity_pairs):
        vcpu.vcpu_type = vtype
        vcpu.node_affinity = affinity
        vcpu.llc_pressure = 25.0 if vtype is VcpuType.LLC_T else 10.0
    return machine


def node_of(machine, vcpu):
    return machine.topology.node_of_pcpu(vcpu.pcpu)


class TestEvenSpread:
    def test_memory_intensive_split_evenly(self):
        machine = build_machine([(VcpuType.LLC_T, 0)] * 4 + [(VcpuType.LLC_FI, 1)] * 4)
        decisions = periodical_partition(machine, now=1.0)
        assert len(decisions) == 8
        per_node = [0, 0]
        for d in decisions:
            per_node[d.node] += 1
        assert per_node == [4, 4]

    def test_odd_count_differs_by_at_most_one(self):
        machine = build_machine([(VcpuType.LLC_T, 0)] * 5)
        decisions = periodical_partition(machine, now=1.0)
        per_node = [0, 0]
        for d in decisions:
            per_node[d.node] += 1
        assert abs(per_node[0] - per_node[1]) <= 1

    def test_llc_fr_vcpus_left_alone(self):
        machine = build_machine(
            [(VcpuType.LLC_FR, 0), (VcpuType.LLC_FR, 1), (VcpuType.LLC_T, 0)]
        )
        decisions = periodical_partition(machine, now=1.0)
        assert len(decisions) == 1
        assert decisions[0].vcpu_type is VcpuType.LLC_T

    def test_assigned_node_recorded_on_vcpu(self):
        machine = build_machine([(VcpuType.LLC_T, 0), (VcpuType.LLC_T, 1)])
        periodical_partition(machine, now=1.0)
        for vcpu in machine.vcpus:
            assert vcpu.assigned_node is not None
            assert node_of(machine, vcpu) == vcpu.assigned_node


class TestTypePriority:
    def test_llc_t_assigned_before_llc_fi(self):
        machine = build_machine(
            [(VcpuType.LLC_FI, 0), (VcpuType.LLC_T, 0), (VcpuType.LLC_FI, 0), (VcpuType.LLC_T, 0)]
        )
        decisions = periodical_partition(machine, now=1.0)
        types = [d.vcpu_type for d in decisions]
        first_fi = types.index(VcpuType.LLC_FI)
        assert all(t is VcpuType.LLC_T for t in types[:first_fi])


class TestAffinityPreference:
    def test_all_local_when_affinities_balanced(self):
        machine = build_machine(
            [(VcpuType.LLC_T, 0), (VcpuType.LLC_T, 1), (VcpuType.LLC_T, 0), (VcpuType.LLC_T, 1)]
        )
        decisions = periodical_partition(machine, now=1.0)
        assert all(d.local for d in decisions)

    def test_forced_violations_only_under_imbalance(self):
        """With all affinities on node 1, exactly half must move away."""
        machine = build_machine([(VcpuType.LLC_T, 1)] * 4)
        decisions = periodical_partition(machine, now=1.0)
        locals_ = sum(1 for d in decisions if d.local)
        assert locals_ == 2  # node 1 takes 2; node 0's 2 are violations

    def test_unknown_affinity_falls_back_to_current_node(self):
        machine = build_machine([(VcpuType.LLC_T, None), (VcpuType.LLC_T, None)])
        decisions = periodical_partition(machine, now=1.0)
        assert len(decisions) == 2

    def test_never_sampled_vcpu_reports_effective_affinity(self):
        """Regression: a never-sampled VCPU (``node_affinity is None``)
        assigned to the node it was already running on must report
        ``local=True``.

        Algorithm 1 groups such VCPUs under their current node, but the
        decision used to record the raw ``None`` affinity, forcing
        ``local=False`` and skewing the ``partition`` event's local
        count.  The decision must carry the *effective* affinity — the
        node the VCPU occupied when the round started, captured before
        any migration rebinds ``vcpu.pcpu``.
        """
        machine = build_machine([(VcpuType.LLC_T, None), (VcpuType.LLC_T, None)])
        start_node = {v.key: node_of(machine, v) for v in machine.vcpus}
        decisions = periodical_partition(machine, now=1.0)
        assert len(decisions) == 2
        for d in decisions:
            assert d.affinity == start_node[d.vcpu_key]
            assert d.local == (d.node == d.affinity)
        # Even spread puts one VCPU per node; whichever lands on its own
        # start node must be counted local (used to be zero always).
        assert sum(1 for d in decisions if d.local) >= 1


class TestTargetPcpuChoice:
    def test_migrates_to_least_loaded_pcpu_of_node(self):
        machine = build_machine([(VcpuType.LLC_T, 0)])
        vcpu = machine.vcpus[0]
        decision = periodical_partition(machine, now=1.0)[0]
        # Lands on the decision node, on a PCPU that is no more loaded
        # (after receiving the VCPU) than any peer plus the arrival.
        assert machine.topology.node_of_pcpu(vcpu.pcpu) == decision.node
        target = machine.pcpus[vcpu.pcpu]
        peers = [
            machine.pcpus[p]
            for p in machine.topology.pcpus_of_node(decision.node)
            if p != vcpu.pcpu
        ]
        assert target.load_with_current <= 1 + min(
            p.load_with_current for p in peers
        )


@given(
    st.lists(
        st.tuples(
            st.sampled_from([VcpuType.LLC_T, VcpuType.LLC_FI, VcpuType.LLC_FR]),
            st.integers(min_value=0, max_value=1),
        ),
        min_size=1,
        max_size=12,
    ),
    st.integers(min_value=2, max_value=4),
)
def test_property_even_spread_and_coverage(pairs, num_nodes):
    """Algorithm 1 invariants for arbitrary type/affinity mixes.

    * every memory-intensive VCPU gets assigned exactly once;
    * per-node assignment counts differ by at most one;
    * a VCPU whose affinity matches its node is marked local.
    """
    topo = symmetric_topology(num_nodes, 2)
    pairs = [(t, a % num_nodes) for t, a in pairs]
    machine = build_machine(pairs, topology=topo)
    decisions = periodical_partition(machine, now=1.0)

    intensive = [v for v in machine.vcpus if v.vcpu_type.memory_intensive]
    assert len(decisions) == len(intensive)
    assert len({d.vcpu_key for d in decisions}) == len(decisions)

    counts = [0] * num_nodes
    for d in decisions:
        counts[d.node] += 1
    if decisions:
        assert max(counts) - min(counts) <= 1

    for d in decisions:
        assert d.local == (d.affinity == d.node)
