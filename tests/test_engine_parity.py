"""Property test: batched == vector == reference, canonically.

Hypothesis draws seeded random scenarios — workload profile, scheduler,
work scale, root seed and fault preset — and runs each one through all
three engines.  The assertion is on the *canonical JSON* of the
:class:`~repro.metrics.collectors.RunSummary` (``to_dict`` serialized
with sorted keys), so every serialized quantity participates: finish
times, PMU counter totals (instructions, LLC refs/misses, local/remote
accesses), migration and overhead accounting, fault statistics.

The one excluded key is ``phase_profile``: it reports *host* wall-clock
spans, and the engines legitimately differ there — not just in timings
(nondeterministic by nature) but in span schedule, since the batched
engine records a ``horizon`` span per macro-step and amortises the
per-epoch spans across whole batches.  Everything the simulation
computes is compared bit-for-bit.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import (
    ScenarioConfig,
    make_scheduler,
    spec_scenario,
)
from repro.faults.plan import FAULT_PRESETS, fault_preset
from repro.metrics.collectors import summarize

ENGINES = ("reference", "vector", "batched")

scenario_params = st.fixed_dictionaries(
    {
        "profile": st.sampled_from(["soplex", "mcf", "lbm", "povray", "lu"]),
        "scheduler": st.sampled_from(["credit", "vprobe", "lb", "brm"]),
        "work_scale": st.sampled_from([0.05, 0.1, 0.2]),
        "seed": st.integers(min_value=0, max_value=2**16),
        "faults": st.sampled_from([None] + sorted(FAULT_PRESETS)),
    }
)


def _canonical_summary(engine: str, params: dict) -> str:
    plan = fault_preset(params["faults"]) if params["faults"] else None
    cfg = ScenarioConfig(
        work_scale=params["work_scale"],
        seed=params["seed"],
        engine=engine,
        faults=None if plan is None or plan.is_null() else plan,
        label=f"parity {params['profile']}",
    )
    machine = spec_scenario(params["profile"], make_scheduler(params["scheduler"]), cfg)
    machine.run(max_time_s=0.6)
    summary = summarize(machine).to_dict()
    summary.pop("phase_profile", None)
    summary.pop("horizon_stats", None)
    return json.dumps(summary, sort_keys=True)


@settings(max_examples=8, deadline=None)
@given(params=scenario_params)
def test_engines_agree_on_canonical_summary(params):
    """All three engines serialize to the identical canonical JSON."""
    reference = _canonical_summary("reference", params)
    for engine in ("vector", "batched"):
        candidate = _canonical_summary(engine, params)
        assert candidate == reference, (
            f"{engine} diverged from reference on {params!r}"
        )
