"""Property test: batched == vector == reference, canonically.

Hypothesis draws seeded random scenarios — workload profile, scheduler,
work scale, root seed and fault preset — and runs each one through all
three engines.  The assertion is on the *canonical JSON* of the
:class:`~repro.metrics.collectors.RunSummary` (``to_dict`` serialized
with sorted keys), so every serialized quantity participates: finish
times, PMU counter totals (instructions, LLC refs/misses, local/remote
accesses), migration and overhead accounting, fault statistics.

The one excluded key is ``phase_profile``: it reports *host* wall-clock
spans, and the engines legitimately differ there — not just in timings
(nondeterministic by nature) but in span schedule, since the batched
engine records a ``horizon`` span per macro-step and amortises the
per-epoch spans across whole batches.  Everything the simulation
computes is compared bit-for-bit.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.scenarios import (
    ScenarioConfig,
    make_scheduler,
    spec_scenario,
)
from repro.faults.plan import FAULT_PRESETS, fault_preset
from repro.metrics.collectors import summarize

ENGINES = ("reference", "vector", "batched")

scenario_params = st.fixed_dictionaries(
    {
        "profile": st.sampled_from(["soplex", "mcf", "lbm", "povray", "lu"]),
        "scheduler": st.sampled_from(["credit", "vprobe", "lb", "brm"]),
        "work_scale": st.sampled_from([0.05, 0.1, 0.2]),
        "seed": st.integers(min_value=0, max_value=2**16),
        "faults": st.sampled_from([None] + sorted(FAULT_PRESETS)),
    }
)


def _canonical_summary(engine: str, params: dict) -> str:
    plan = fault_preset(params["faults"]) if params["faults"] else None
    cfg = ScenarioConfig(
        work_scale=params["work_scale"],
        seed=params["seed"],
        engine=engine,
        faults=None if plan is None or plan.is_null() else plan,
        label=f"parity {params['profile']}",
    )
    machine = spec_scenario(params["profile"], make_scheduler(params["scheduler"]), cfg)
    machine.run(max_time_s=0.6)
    summary = summarize(machine).to_dict()
    summary.pop("phase_profile", None)
    summary.pop("horizon_stats", None)
    return json.dumps(summary, sort_keys=True)


@settings(max_examples=8, deadline=None)
@given(params=scenario_params)
def test_engines_agree_on_canonical_summary(params):
    """All three engines serialize to the identical canonical JSON."""
    reference = _canonical_summary("reference", params)
    for engine in ("vector", "batched"):
        candidate = _canonical_summary(engine, params)
        assert candidate == reference, (
            f"{engine} diverged from reference on {params!r}"
        )


stacked_params = st.fixed_dictionaries(
    {
        "profile": st.sampled_from(["soplex", "povray", "lu"]),
        # Lanes of one stack may run different policies; draw a lane
        # count and a (possibly repeating) scheduler assignment.
        "lanes": st.integers(min_value=2, max_value=5),
        "schedulers": st.lists(
            st.sampled_from(["credit", "vprobe", "lb", "brm"]),
            min_size=5,
            max_size=5,
        ),
        "work_scale": st.sampled_from([0.02, 0.05]),
        "base_seed": st.integers(min_value=0, max_value=2**16),
        "faults": st.sampled_from([None] + sorted(FAULT_PRESETS)),
        # Optional mid-run cut: stop the whole stack at an epoch
        # boundary, then restack to completion — the continuation must
        # be bitwise the single-shot run.
        "cut_s": st.sampled_from([None, 0.15, 0.3]),
    }
)


def _lane_config(engine: str, params: dict, lane: int) -> ScenarioConfig:
    plan = fault_preset(params["faults"]) if params["faults"] else None
    return ScenarioConfig(
        work_scale=params["work_scale"],
        seed=params["base_seed"] + lane,
        engine=engine,
        faults=None if plan is None or plan.is_null() else plan,
        label=f"stacked parity {params['profile']}",
    )


@settings(max_examples=8, deadline=None)
@given(params=stacked_params)
def test_stacked_lanes_agree_with_solo_batched(params):
    """Every stacked lane serializes to its solo batched canonical JSON.

    The matrix covers lane count × scheduler mix × fault preset ×
    mid-run cut: seeds vary per lane (the grid axis stacking exists
    for), schedulers may differ between stack-mates, fault plans ride
    the machine layer above the kernel, and an interrupted-and-resumed
    stack must replay the exact epoch stream.
    """
    from repro.xen.stacked import run_stacked

    lanes = params["lanes"]
    schedulers = params["schedulers"][:lanes]
    solo = []
    for lane, scheduler in enumerate(schedulers):
        cfg = _lane_config("batched", params, lane)
        machine = spec_scenario(params["profile"], make_scheduler(scheduler), cfg)
        machine.run(max_time_s=0.6)
        summary = summarize(machine).to_dict()
        summary.pop("phase_profile", None)
        summary.pop("horizon_stats", None)
        solo.append(json.dumps(summary, sort_keys=True))

    machines = [
        spec_scenario(
            params["profile"],
            make_scheduler(scheduler),
            _lane_config("stacked", params, lane),
        )
        for lane, scheduler in enumerate(schedulers)
    ]
    cut_s = params["cut_s"]
    if cut_s is None:
        assert all(r.ok for r in run_stacked(machines, max_time_s=0.6))
    else:
        # Interrupt every still-running lane at the cut (the epoch
        # boundary stop the checkpoint machinery uses), then restack
        # only the interrupted lanes — a lane that already completed
        # must keep its final state untouched.
        checks = [lambda m=m: m.time >= cut_s for m in machines]
        first = run_stacked(machines, max_time_s=0.6, stop_checks=checks)
        assert all(r.ok for r in first)
        resumable = [
            m for r, m in zip(first, machines) if r.result.interrupted
        ]
        if resumable:
            assert all(r.ok for r in run_stacked(resumable, max_time_s=0.6))
    for lane, machine in enumerate(machines):
        summary = summarize(machine).to_dict()
        summary.pop("phase_profile", None)
        summary.pop("horizon_stats", None)
        candidate = json.dumps(summary, sort_keys=True)
        assert candidate == solo[lane], (
            f"stacked lane {lane} diverged from solo batched on {params!r}"
        )
