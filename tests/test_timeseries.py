"""Tests for repro.metrics.timeseries."""

import pytest

from repro.core.vprobe import vprobe
from repro.hardware.topology import xeon_e5620
from repro.metrics.timeseries import Trace, take_snapshot, trace_run
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

GIB = 1024**3


def build(policy=None, total=3e8, num_vcpus=4):
    machine = Machine(
        xeon_e5620(),
        policy or CreditScheduler(),
        SimConfig(seed=2, sample_period_s=0.2, max_time_s=20.0),
    )
    profile = synthetic_profile("llc-t", total_instructions=total)
    machine.add_domain(
        Domain.homogeneous("vm", 1 * GIB, place_split(num_vcpus, 2), profile, num_vcpus)
    )
    return machine


class TestSnapshot:
    def test_initial_snapshot_is_empty(self):
        snap = take_snapshot(build())
        assert snap.time_s == 0.0
        assert snap.accesses["vm"] == (0.0, 0.0)
        assert snap.migrations == (0, 0)

    def test_intensive_per_node_counts_runnable(self):
        machine = build()
        for vcpu in machine.vcpus:
            vcpu.vcpu_type = type(vcpu.vcpu_type).LLC_T
        snap = take_snapshot(machine)
        assert sum(snap.intensive_per_node) == 4


class TestTraceRun:
    def test_snapshots_cover_run(self):
        machine = build()
        trace = trace_run(machine, interval_s=0.25)
        assert len(trace) >= 3
        times = trace.times()
        assert times[0] == 0.0
        assert times == sorted(times)

    def test_counters_monotone(self):
        machine = build()
        trace = trace_run(machine, interval_s=0.25)
        instr = [s.instructions["vm"] for s in trace.snapshots]
        assert instr == sorted(instr)
        migr = [s.migrations[0] for s in trace.snapshots]
        assert migr == sorted(migr)

    def test_window_remote_ratio_bounded(self):
        machine = build()
        trace = trace_run(machine, interval_s=0.25)
        ratios = trace.window_remote_ratio("vm")
        assert len(ratios) == len(trace) - 1
        assert all(0.0 <= r <= 1.0 for r in ratios if r is not None)

    def test_window_remote_ratio_idle_window_is_none(self):
        """A window with no DRAM traffic is unknown locality, not 0."""
        trace = trace_run(build(), interval_s=0.25)
        base = trace.snapshots[0]
        idle = type(base)(
            time_s=trace.snapshots[-1].time_s + 0.25,
            accesses=dict(trace.snapshots[-1].accesses),
            instructions=dict(trace.snapshots[-1].instructions),
            intensive_per_node=trace.snapshots[-1].intensive_per_node,
            migrations=trace.snapshots[-1].migrations,
            overhead_s=trace.snapshots[-1].overhead_s,
        )
        trace.snapshots.append(idle)
        ratios = trace.window_remote_ratio("vm")
        assert ratios[-1] is None
        assert trace.window_remote_ratio("no-such-domain") == [None] * len(ratios)

    def test_migration_rate_non_negative(self):
        machine = build()
        trace = trace_run(machine, interval_s=0.25)
        rates = trace.window_migration_rate()
        # None marks a zero-length window (unknown rate), not a number.
        assert all(r >= 0 for r in rates if r is not None)

    def test_migration_rate_zero_length_window_is_none(self):
        """Two snapshots at the same instant: the rate is unknown, not
        zero and certainly not a ZeroDivisionError — the same sentinel
        convention as ``window_remote_ratio``."""
        trace = trace_run(build(), interval_s=0.25)
        last = trace.snapshots[-1]
        same_instant = type(last)(
            time_s=last.time_s,
            accesses=dict(last.accesses),
            instructions=dict(last.instructions),
            intensive_per_node=last.intensive_per_node,
            migrations=(last.migrations[0] + 3, last.migrations[1] + 3),
            overhead_s=last.overhead_s,
        )
        trace.snapshots.append(same_instant)
        rates = trace.window_migration_rate()
        assert rates[-1] is None
        assert all(r >= 0 for r in rates[:-1] if r is not None)

    def test_node_imbalance_shape(self):
        machine = build(policy=vprobe())
        trace = trace_run(machine, interval_s=0.25)
        imbalance = trace.node_imbalance()
        assert all(i >= 0 for i in imbalance)

    def test_node_imbalance_excludes_prerun_snapshot(self):
        """The t=0 spread reflects construction order, not scheduling."""
        machine = build(policy=vprobe())
        trace = trace_run(machine, interval_s=0.25)
        assert len(trace.node_imbalance()) == len(trace) - 1

    def test_vprobe_trace_reaches_locality(self):
        """After the first sampling periods, vProbe's windows must be
        clearly more local than the run's start."""
        machine = build(policy=vprobe(), total=8e8)
        trace = trace_run(machine, interval_s=0.25)
        ratios = [r for r in trace.window_remote_ratio("vm") if r is not None]
        assert len(ratios) >= 4
        late = min(ratios[2:])
        assert late < 0.35

    def test_interval_validated(self):
        with pytest.raises(ValueError):
            trace_run(build(), interval_s=0.0)

    def test_empty_trace_helpers(self):
        trace = Trace()
        assert trace.window_remote_ratio("vm") == []
        assert trace.window_migration_rate() == []
        assert trace.node_imbalance() == []
