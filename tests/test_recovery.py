"""Tests for repro.recovery: checkpoints, journal, deadlines, shutdown.

The contract under test is the one DESIGN.md states: a run is a
deterministic function of (builder, scheduler, config), and its state
at any epoch boundary is a complete description of the rest of the
run.  Everything here follows from that — resume parity, journal
replay, quarantine instead of grid failure, and the resumable exit.
"""

import json
import pathlib
import pickle
import signal
import threading
import time
from functools import partial

import pytest

import repro
from repro.experiments.parallel import GridIncompleteError, ParallelRunner
from repro.experiments.runner import execute_cell
from repro.experiments.scenarios import ScenarioConfig, solo_scenario
from repro.faults.plan import fault_preset
from repro.cache.keys import result_key
from repro.cache.serialize import summary_to_payload
from repro.obs.manifest import canonical_dumps, config_hash
from repro.recovery import (
    CheckpointError,
    DeadlinePolicy,
    GracefulShutdown,
    GridJournal,
    Quarantine,
    ShutdownRequested,
    EXIT_RESUMABLE,
    checkpoint_path_for,
    execute_cell_resumable,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.recovery.checkpoint import read_header
from repro.recovery.deadline import CellDeadlineExceeded, alarm_guard
from repro.xen.simulator import SimulationTimeout

CFG = ScenarioConfig(work_scale=0.02, seed=1)
BUILDER = partial(solo_scenario, "lu")

ENGINES = ("batched", "vector", "reference")
SCHEDULERS = ("credit", "vprobe", "vcpu-p", "lb", "brm")
FAULTS = ("none", "chaos")


def canonical_result(summary) -> str:
    """The comparison form: canonical JSON minus the wall-clock profile."""
    payload = summary_to_payload(summary)
    payload.pop("phase_profile", None)
    payload.pop("horizon_stats", None)
    return canonical_dumps(payload)


def build_machine(scheduler: str = "credit", cfg: ScenarioConfig = CFG):
    from repro.experiments.scenarios import make_scheduler

    return BUILDER(make_scheduler(scheduler), cfg)


def run_partially(machine, epochs_of_polls: int = 3):
    """Advance a machine a few steps, stopping at an epoch boundary."""
    polls = iter(range(10**9))
    result = machine.run(stop_check=lambda: next(polls) >= epochs_of_polls)
    assert result.interrupted
    return machine


class StopAfter:
    """A picklable stop_check that fires on its Nth poll."""

    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.count = 0

    def __call__(self) -> bool:
        self.count += 1
        return self.count >= self.polls


# ----------------------------------------------------------------------
# Checkpoint files
# ----------------------------------------------------------------------
class TestCheckpointFile:
    def test_save_header_and_inspect(self, tmp_path):
        machine = run_partially(build_machine())
        path = tmp_path / "m.ckpt"
        header = save_checkpoint(machine, path)
        assert header["schema"] == "repro.checkpoint/v1"
        assert header["config_hash"] == config_hash(machine.config)
        assert header["epoch_index"] == machine.epoch_index
        assert read_header(path) == header
        assert inspect_checkpoint(path) == header

    def test_load_restores_epoch_state(self, tmp_path):
        machine = run_partially(build_machine())
        path = tmp_path / "m.ckpt"
        save_checkpoint(machine, path)
        restored = load_checkpoint(
            path, expect_config_hash=config_hash(machine.config)
        )
        assert restored.epoch_index == machine.epoch_index
        assert restored.time == machine.time

    def test_truncated_payload_detected(self, tmp_path):
        machine = run_partially(build_machine())
        path = tmp_path / "m.ckpt"
        save_checkpoint(machine, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 64])
        with pytest.raises(CheckpointError, match="digest mismatch"):
            inspect_checkpoint(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"\x00\x01 not a checkpoint\n")
        with pytest.raises(CheckpointError):
            read_header(path)

    def test_wrong_schema_rejected(self, tmp_path):
        path = tmp_path / "other.ckpt"
        path.write_text('{"schema": "something.else/v9"}\n')
        with pytest.raises(CheckpointError, match="schema"):
            read_header(path)

    def test_stale_version_rejected(self, tmp_path, monkeypatch):
        machine = run_partially(build_machine())
        path = tmp_path / "m.ckpt"
        save_checkpoint(machine, path)
        monkeypatch.setattr(repro, "__version__", "0.0.0-test")
        with pytest.raises(CheckpointError, match="stale snapshot"):
            inspect_checkpoint(path)

    def test_config_hash_mismatch_rejected(self, tmp_path):
        machine = run_partially(build_machine())
        path = tmp_path / "m.ckpt"
        save_checkpoint(machine, path)
        with pytest.raises(CheckpointError, match="different run"):
            load_checkpoint(path, expect_config_hash="0" * 64)

    def test_tampered_header_hash_rejected(self, tmp_path):
        # Defense in depth: editing the header's config_hash to match
        # the caller's expectation must still fail, because the
        # restored machine re-derives the hash from its actual config.
        machine = run_partially(build_machine())
        path = tmp_path / "m.ckpt"
        save_checkpoint(machine, path)
        header_line, _, payload = path.read_bytes().partition(b"\n")
        header = json.loads(header_line)
        header["config_hash"] = "f" * len(header["config_hash"])
        path.write_bytes(canonical_dumps(header).encode() + b"\n" + payload)
        with pytest.raises(CheckpointError, match="different value"):
            load_checkpoint(path, expect_config_hash=header["config_hash"])

    def test_checkpoint_path_for(self, tmp_path):
        path = checkpoint_path_for(tmp_path, "abc123")
        assert path == tmp_path / "abc123.ckpt"


# ----------------------------------------------------------------------
# Resume parity: the tentpole guarantee
# ----------------------------------------------------------------------
class TestResumeParity:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    @pytest.mark.parametrize("faults", FAULTS)
    def test_interrupt_resume_matches_uninterrupted(
        self, tmp_path, engine, scheduler, faults
    ):
        cfg = ScenarioConfig(
            work_scale=0.02,
            seed=1,
            engine=engine,
            faults=None if faults == "none" else fault_preset(faults),
        )
        baseline = execute_cell(BUILDER, scheduler, cfg)
        key = result_key(BUILDER, scheduler, cfg)
        assert key is not None
        interrupted = execute_cell_resumable(
            BUILDER, scheduler, cfg, tmp_path, key, stop_check=StopAfter(3)
        )
        assert interrupted is None  # the cut actually happened
        ckpt = checkpoint_path_for(tmp_path, key)
        assert ckpt.exists()
        resumed = execute_cell_resumable(BUILDER, scheduler, cfg, tmp_path, key)
        assert resumed is not None
        assert canonical_result(resumed) == canonical_result(baseline)
        assert not ckpt.exists()  # completed runs clean up their snapshot

    def test_stale_snapshot_rebuilds_from_scratch(self, tmp_path):
        key = result_key(BUILDER, "credit", CFG)
        ckpt = checkpoint_path_for(tmp_path, key)
        ckpt.write_bytes(b"garbage that is not a checkpoint\n")
        summary = execute_cell_resumable(BUILDER, "credit", CFG, tmp_path, key)
        assert canonical_result(summary) == canonical_result(
            execute_cell(BUILDER, "credit", CFG)
        )

    def test_keyless_cell_runs_without_persistence(self, tmp_path):
        summary = execute_cell_resumable(BUILDER, "credit", CFG, tmp_path, None)
        assert canonical_result(summary) == canonical_result(
            execute_cell(BUILDER, "credit", CFG)
        )
        assert list(tmp_path.iterdir()) == []  # nothing named, nothing written

    def test_double_interrupt_then_resume(self, tmp_path):
        # Two successive cuts (checkpoint of a checkpointed run) still
        # land on the uninterrupted result.
        baseline = execute_cell(BUILDER, "vprobe", CFG)
        key = result_key(BUILDER, "vprobe", CFG)
        assert (
            execute_cell_resumable(
                BUILDER, "vprobe", CFG, tmp_path, key, stop_check=StopAfter(2)
            )
            is None
        )
        assert (
            execute_cell_resumable(
                BUILDER, "vprobe", CFG, tmp_path, key, stop_check=StopAfter(2)
            )
            is None
        )
        resumed = execute_cell_resumable(BUILDER, "vprobe", CFG, tmp_path, key)
        assert canonical_result(resumed) == canonical_result(baseline)


class TestPmuPickle:
    def test_counter_views_rebound_after_unpickle(self):
        # Regression: numpy does not preserve view/base aliasing through
        # pickle, so a restored PMU's per-vcpu banks would be detached
        # copies of their _node_matrix rows — batched charge_epoch
        # scatter-adds landing in the matrix while every reader kept the
        # frozen copy.  PMU.__setstate__ must rebind the views.
        machine = run_partially(build_machine())
        restored = pickle.loads(pickle.dumps(machine))
        pmu = restored.pmu
        for key, bank in pmu._counters.items():
            assert bank.node_accesses.base is pmu._node_matrix
            row = pmu._row_of[key]
            # A matrix-side write must be visible through the bank view.
            pmu._node_matrix[row, 0] += 1.0
            assert bank.node_accesses[0] == pmu._node_matrix[row, 0]


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
class TestJournal:
    def summary(self, scheduler="credit"):
        return execute_cell(BUILDER, scheduler, CFG)

    def test_record_and_reload(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = GridJournal(path)
        summary = self.summary()
        journal.record_cell("k1", "cell#0", summary)
        journal.record_job("fig3")
        reloaded = GridJournal(path, resume=True)
        assert reloaded.loaded_cells == 1
        assert reloaded.loaded_jobs == 1
        assert reloaded.get_cell("k1") == summary
        assert reloaded.job_status("fig3") == "done"

    def test_fresh_run_discards_stale_journal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        GridJournal(path).record_cell("k1", "cell#0", self.summary())
        fresh = GridJournal(path, resume=False)
        assert fresh.cell_count == 0
        assert not path.exists()

    def test_malformed_lines_invisible(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = GridJournal(path)
        journal.record_cell("k1", "cell#0", self.summary())
        with path.open("a", encoding="utf-8") as fh:
            fh.write("{torn line\n")
            fh.write('{"schema": "other/v1", "kind": "cell"}\n')
            fh.write(
                '{"schema": "repro.journal/v1", "version": "0.0.0", '
                '"kind": "cell", "status": "done", "key": "k9", "summary": {}}\n'
            )
        reloaded = GridJournal(path, resume=True)
        assert reloaded.loaded_cells == 1
        assert reloaded.get_cell("k9") is None

    def test_quarantine_roundtrip_and_clear(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = GridJournal(path)
        info = {"cell": "c#0", "reason": "deadline", "strikes": 3, "detail": "x"}
        journal.record_quarantine("k1", "c#0", info)
        reloaded = GridJournal(path, resume=True)
        assert reloaded.loaded_quarantines == 1
        assert reloaded.get_quarantine("k1") == info
        # A later success supersedes the quarantine.
        reloaded.record_cell("k1", "c#0", self.summary())
        assert reloaded.get_quarantine("k1") is None
        assert GridJournal(path, resume=True).get_quarantine("k1") is None

    def test_job_status_validation(self, tmp_path):
        journal = GridJournal(tmp_path / "j.jsonl")
        with pytest.raises(ValueError):
            journal.record_job("fig3", "exploded")
        journal.record_job("fig3", "quarantined")
        assert journal.job_status("fig3") == "quarantined"

    def test_file_is_canonical_jsonl(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = GridJournal(path)
        journal.record_cell("k1", "cell#0", self.summary())
        journal.record_job("fig3")
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record["schema"] == "repro.journal/v1"
            assert canonical_dumps(record) == line

    def test_write_failure_never_raises(self, tmp_path):
        journal = GridJournal(tmp_path / "j.jsonl")
        journal.path = tmp_path / "missing" / "deeper" / "j.jsonl"
        journal.path.parent.parent.write_text("")  # a file where a dir must go
        journal.record_job("fig3")  # must not raise
        assert journal.job_status("fig3") == "done"


class TestJournalCache:
    """The cache-protocol adapter that journal-covers run_one jobs."""

    def test_put_then_get_hits_journal(self, tmp_path):
        from repro.recovery.journal import JournalCache

        journal = GridJournal(tmp_path / "j.jsonl")
        adapter = JournalCache(journal)
        summary = execute_cell(BUILDER, "credit", CFG)
        assert adapter.get("k1") is None
        assert adapter.put("k1", summary, meta={"scheduler": "credit"})
        assert adapter.get("k1") == summary
        assert adapter.journal_hits == 1
        # The cell is durably journaled, not just in memory.
        assert GridJournal(tmp_path / "j.jsonl", resume=True).get_cell("k1") == summary

    def test_cache_fallback_written_through_to_journal(self, tmp_path):
        from repro.cache.store import ResultCache
        from repro.recovery.journal import JournalCache

        cache = ResultCache(tmp_path / "cache")
        summary = execute_cell(BUILDER, "credit", CFG)
        key = "a" * 64
        cache.put(key, summary)
        journal = GridJournal(tmp_path / "j.jsonl")
        adapter = JournalCache(journal, cache)
        assert adapter.get(key) == summary  # served by the cache...
        assert adapter.journal_hits == 0
        assert journal.get_cell(key) == summary  # ...and journaled
        assert adapter.get(key) == summary  # now a journal hit
        assert adapter.journal_hits == 1

    def test_run_one_jobs_resume_without_cache(self, tmp_path, monkeypatch):
        # The integration the adapter exists for: a serial report job's
        # cells replay from the journal alone on resume.
        from repro.experiments.runner import run_one
        from repro.recovery.journal import JournalCache

        path = tmp_path / "j.jsonl"
        first = run_one(
            BUILDER, "credit", CFG, cache=JournalCache(GridJournal(path))
        )
        monkeypatch.setattr(
            "repro.experiments.runner.execute_cell",
            lambda *a, **k: pytest.fail("journaled cell was recomputed"),
        )
        adapter = JournalCache(GridJournal(path, resume=True))
        replay = run_one(BUILDER, "credit", CFG, cache=adapter)
        assert adapter.journal_hits == 1
        assert canonical_result(replay) == canonical_result(first)


# ----------------------------------------------------------------------
# Deadlines and quarantine
# ----------------------------------------------------------------------
class TestDeadlinePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlinePolicy(deadline_s=0)
        with pytest.raises(ValueError):
            DeadlinePolicy(deadline_s=1, max_strikes=0)
        with pytest.raises(ValueError):
            DeadlinePolicy(deadline_s=1, backoff_base_s=-1)
        with pytest.raises(ValueError):
            DeadlinePolicy(deadline_s=1, backoff_factor=0.5)

    def test_backoff_schedule(self):
        policy = DeadlinePolicy(deadline_s=1, backoff_base_s=0.25, backoff_factor=2)
        assert [policy.backoff_s(k) for k in (1, 2, 3)] == [0.25, 0.5, 1.0]

    def test_coerce(self):
        assert DeadlinePolicy.coerce(None) is None
        policy = DeadlinePolicy(deadline_s=3)
        assert DeadlinePolicy.coerce(policy) is policy
        assert DeadlinePolicy.coerce(2.5) == DeadlinePolicy(deadline_s=2.5)


class TestAlarmGuard:
    def test_fires_on_overrun(self):
        with pytest.raises(CellDeadlineExceeded) as err:
            with alarm_guard(0.05):
                time.sleep(5.0)
        assert err.value.deadline_s == 0.05

    def test_noop_without_deadline(self):
        with alarm_guard(None):
            pass

    def test_noop_off_main_thread(self):
        outcome = {}

        def body():
            try:
                with alarm_guard(0.01):
                    time.sleep(0.05)
                outcome["ok"] = True
            except BaseException as exc:  # pragma: no cover - the failure mode
                outcome["error"] = exc

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert outcome == {"ok": True}

    def test_restores_previous_handler(self):
        previous = signal.getsignal(signal.SIGALRM)
        with alarm_guard(30.0):
            assert signal.getsignal(signal.SIGALRM) is not previous
        assert signal.getsignal(signal.SIGALRM) is previous


def _slow_builder(policy, cfg):
    """Module-level (hence picklable) builder that blows any sub-second
    wall-clock deadline before the machine is even built."""
    time.sleep(5.0)
    return solo_scenario("lu", policy, cfg)  # pragma: no cover - never reached


_FLAKY_CALLS = {"count": 0}


def _flaky_slow_builder(policy, cfg):
    """Slow on the first attempt only — the transient-load shape the
    backoff-retry path exists for."""
    _FLAKY_CALLS["count"] += 1
    if _FLAKY_CALLS["count"] == 1:
        time.sleep(5.0)  # pragma: no cover - interrupted by the alarm
    return solo_scenario("lu", policy, cfg)


class TestQuarantine:
    def test_sim_timeout_quarantines_serially(self, tmp_path):
        capped = ScenarioConfig(work_scale=0.02, seed=1, max_epochs=50)
        journal = GridJournal(tmp_path / "j.jsonl")
        runner = ParallelRunner(1, journal=journal)
        results = runner.run_cells([(BUILDER, "credit", capped)])
        assert results == [None]
        (q,) = runner.quarantined
        assert q.reason == "sim_timeout"
        assert q.strikes == 1
        assert q.key == result_key(BUILDER, "credit", capped)
        assert journal.get_quarantine(q.key) is not None

    def test_journaled_quarantine_not_retried(self, tmp_path, monkeypatch):
        capped = ScenarioConfig(work_scale=0.02, seed=1, max_epochs=50)
        path = tmp_path / "j.jsonl"
        first = ParallelRunner(1, journal=GridJournal(path))
        first.run_cells([(BUILDER, "credit", capped)])
        # Resume: the journaled quarantine resolves without any attempt.
        monkeypatch.setattr(
            "repro.experiments.parallel.execute_cell",
            lambda *a, **k: pytest.fail("quarantined cell was re-executed"),
        )
        resumed = ParallelRunner(1, journal=GridJournal(path, resume=True))
        results = resumed.run_cells([(BUILDER, "credit", capped)])
        assert results == [None]
        (q,) = resumed.quarantined
        assert q.reason == "sim_timeout"

    def test_deadline_quarantines_after_max_strikes(self):
        policy = DeadlinePolicy(deadline_s=0.05, max_strikes=2, backoff_base_s=0.0)
        runner = ParallelRunner(1, deadline=policy)
        results = runner.run_cells([(_slow_builder, "credit", CFG)])
        assert results == [None]
        (q,) = runner.quarantined
        assert q.reason == "deadline"
        assert q.strikes == 2

    def test_deadline_retry_recovers_transient_overrun(self):
        _FLAKY_CALLS["count"] = 0
        policy = DeadlinePolicy(deadline_s=0.2, max_strikes=3, backoff_base_s=0.0)
        runner = ParallelRunner(1, deadline=policy)
        (summary,) = runner.run_cells([(_flaky_slow_builder, "credit", CFG)])
        assert summary is not None
        assert runner.quarantined == []
        assert _FLAKY_CALLS["count"] == 2

    def test_parallel_sim_timeout_quarantines_without_serial_retry(self):
        capped = ScenarioConfig(work_scale=0.02, seed=1, max_epochs=50)
        cells = [(BUILDER, name, capped) for name in ("credit", "vprobe")]
        runner = ParallelRunner(2, chunksize=1)
        results = runner.run_cells(cells)
        assert results == [None, None]
        assert len(runner.quarantined) == 2
        assert {q.reason for q in runner.quarantined} == {"sim_timeout"}
        assert runner.retried_cells == []  # never the full-cost retry path

    def test_mixed_grid_keeps_good_cells(self):
        capped = ScenarioConfig(work_scale=0.02, seed=1, max_epochs=50)
        cells = [
            (BUILDER, "credit", CFG),
            (BUILDER, "credit", capped),
            (BUILDER, "vprobe", CFG),
        ]
        runner = ParallelRunner(2, chunksize=1)
        results = runner.run_cells(cells)
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert canonical_result(results[0]) == canonical_result(
            execute_cell(BUILDER, "credit", CFG)
        )

    def test_run_grid_raises_grid_incomplete(self):
        from repro.experiments.comparison import WorkloadPoint, run_grid

        capped = ScenarioConfig(work_scale=0.02, seed=1, max_epochs=50)
        with pytest.raises(GridIncompleteError) as err:
            run_grid(
                "t",
                [WorkloadPoint("lu", BUILDER)],
                cfg=capped,
                schedulers=("credit",),
            )
        assert len(err.value.quarantined) == 1
        assert "quarantined" in str(err.value)

    def test_compare_maps_quarantined_to_none(self):
        capped = ScenarioConfig(work_scale=0.02, seed=1, max_epochs=50)
        result = ParallelRunner(1).compare(BUILDER, capped, ("credit", "vprobe"))
        assert result == {"credit": None, "vprobe": None}

    def test_quarantine_to_dict(self):
        q = Quarantine(cell="c#0", key="k", reason="deadline", strikes=3, detail="d")
        assert q.to_dict() == {
            "cell": "c#0",
            "key": "k",
            "reason": "deadline",
            "strikes": 3,
            "detail": "d",
        }


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_exit_code_is_ex_tempfail(self):
        assert EXIT_RESUMABLE == 75

    def test_signal_raises_outside_deferred(self):
        shutdown = GracefulShutdown()
        with shutdown:
            with pytest.raises(ShutdownRequested) as err:
                signal.raise_signal(signal.SIGINT)
        assert shutdown.requested
        assert err.value.signum == signal.SIGINT

    def test_deferred_sets_flag_then_second_signal_raises(self):
        shutdown = GracefulShutdown()
        with shutdown:
            with shutdown.deferred():
                signal.raise_signal(signal.SIGTERM)
                assert shutdown.requested  # flagged, not raised
                assert shutdown.is_requested()
                with pytest.raises(ShutdownRequested):
                    signal.raise_signal(signal.SIGTERM)

    def test_check_raises_once_requested(self):
        shutdown = GracefulShutdown()
        shutdown.check()  # quiet before any signal
        shutdown.requested = True
        shutdown.signum = signal.SIGTERM
        with pytest.raises(ShutdownRequested):
            shutdown.check()

    def test_handlers_restored_on_exit(self):
        previous = {s: signal.getsignal(s) for s in GracefulShutdown.SIGNALS}
        with GracefulShutdown():
            pass
        for sig, handler in previous.items():
            assert signal.getsignal(sig) is handler

    def test_shutdown_requested_is_base_exception(self):
        # The crash-retry machinery catches Exception; a shutdown must
        # sail through it, not be "recovered" as a failed cell.
        assert not issubclass(ShutdownRequested, Exception)
        assert issubclass(ShutdownRequested, BaseException)


class _ScriptedShutdown:
    """GracefulShutdown stand-in whose signal arrives on the Nth
    stop_check poll — deterministic where a real timer would be flaky."""

    def __init__(self, polls: int) -> None:
        self.polls = polls
        self.count = 0
        self.requested = False
        self.signum = signal.SIGTERM
        self._defer_depth = 0

    def is_requested(self) -> bool:
        self.count += 1
        if self.count >= self.polls:
            self.requested = True
        return self.requested

    def check(self) -> None:
        if self.requested:
            raise ShutdownRequested(self.signum)

    def deferred(self):
        import contextlib

        @contextlib.contextmanager
        def _section():
            self._defer_depth += 1
            try:
                yield self
            finally:
                self._defer_depth -= 1

        return _section()


class TestRunnerShutdown:
    def test_serial_cell_checkpoints_then_resumes(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        ckpt_dir = tmp_path / "checkpoints"
        key = result_key(BUILDER, "credit", CFG)
        interrupted = ParallelRunner(
            1,
            journal=GridJournal(journal_path),
            shutdown=_ScriptedShutdown(polls=3),
            checkpoint_dir=ckpt_dir,
        )
        with pytest.raises(ShutdownRequested):
            interrupted.run_cells([(BUILDER, "credit", CFG)])
        assert checkpoint_path_for(ckpt_dir, key).exists()
        # Relaunch: the checkpoint finishes the run; parity holds.
        resumed = ParallelRunner(
            1, journal=GridJournal(journal_path, resume=True), checkpoint_dir=ckpt_dir
        )
        (summary,) = resumed.run_cells([(BUILDER, "credit", CFG)])
        assert canonical_result(summary) == canonical_result(
            execute_cell(BUILDER, "credit", CFG)
        )
        assert not checkpoint_path_for(ckpt_dir, key).exists()
        # And a third run resolves purely from the journal.
        third = ParallelRunner(1, journal=GridJournal(journal_path, resume=True))
        third.run_cells([(BUILDER, "credit", CFG)])
        assert third.journal_hits == 1

    def test_shutdown_before_any_cell_raises_immediately(self, tmp_path):
        shutdown = _ScriptedShutdown(polls=1)
        shutdown.requested = True
        runner = ParallelRunner(1, shutdown=shutdown)
        with pytest.raises(ShutdownRequested):
            runner.run_cells([(BUILDER, "credit", CFG)])


# ----------------------------------------------------------------------
# Journal-aware runner resume (the --resume fast path)
# ----------------------------------------------------------------------
class TestRunnerJournalResume:
    def test_resume_serves_all_cells_from_journal(self, tmp_path, monkeypatch):
        path = tmp_path / "journal.jsonl"
        cells = [(BUILDER, name, CFG) for name in ("credit", "vprobe")]
        first = ParallelRunner(1, journal=GridJournal(path))
        baseline = first.run_cells(cells)
        monkeypatch.setattr(
            "repro.experiments.parallel.execute_cell",
            lambda *a, **k: pytest.fail("journaled cell was recomputed"),
        )
        resumed = ParallelRunner(1, journal=GridJournal(path, resume=True))
        replay = resumed.run_cells(cells)
        assert resumed.journal_hits == 2
        assert [canonical_result(s) for s in replay] == [
            canonical_result(s) for s in baseline
        ]

    def test_cache_hits_written_through_to_journal(self, tmp_path):
        from repro.cache.store import ResultCache

        cache = ResultCache(tmp_path / "cache")
        cells = [(BUILDER, "credit", CFG)]
        ParallelRunner(1, cache=cache).run_cells(cells)  # warm the cache
        path = tmp_path / "journal.jsonl"
        warm = ParallelRunner(1, cache=cache, journal=GridJournal(path))
        warm.run_cells(cells)
        assert warm.cache_hits == 1
        # The journal alone (cold cache) now replays the cell.
        resumed = ParallelRunner(1, journal=GridJournal(path, resume=True))
        resumed.run_cells(cells)
        assert resumed.journal_hits == 1


# ----------------------------------------------------------------------
# CLI surfaces
# ----------------------------------------------------------------------
class TestCheckpointCli:
    def test_inspect_valid_and_invalid(self, tmp_path, capsys):
        from repro.cli import main

        machine = run_partially(build_machine())
        good = tmp_path / "good.ckpt"
        save_checkpoint(machine, good)
        assert main(["checkpoint", "inspect", str(good)]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "config_hash" in out

        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"garbage\n")
        assert main(["checkpoint", "inspect", str(good), str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_inspect_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["checkpoint", "inspect", str(tmp_path / "nope.ckpt")]) == 1
        assert "INVALID" in capsys.readouterr().out


class TestReportResume:
    def test_report_resume_skips_done_jobs_byte_identically(self, tmp_path, capsys):
        from repro.experiments.report_all import regenerate_all

        outdir = tmp_path / "r"
        regenerate_all(outdir, fast=True, only=("table3",))
        first = {
            p.name: p.read_bytes()
            for p in outdir.glob("*.json")
            if p.stem != "recovery"
        }
        assert first  # the job actually rendered
        regenerate_all(outdir, fast=True, only=("table3",), resume=True)
        out = capsys.readouterr().out
        assert "resumed" in out
        second = {
            p.name: p.read_bytes()
            for p in outdir.glob("*.json")
            if p.stem != "recovery"
        }
        assert second == first  # resume recomputed nothing, bytes identical

    def test_recovery_report_written(self, tmp_path):
        from repro.experiments.report_all import regenerate_all

        outdir = tmp_path / "r"
        regenerate_all(outdir, fast=True, only=("table3",))
        report = json.loads((outdir / "recovery.json").read_text())
        assert report["schema"] == "repro.recovery-report/v1"
        assert report["interrupted"] is False
        assert report["jobs"].get("table3_overhead") == "done"
        assert report["quarantined_cells"] == []
