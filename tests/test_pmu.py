"""Tests for repro.hardware.pmu: virtualised counters and windows."""

import numpy as np
import pytest

from repro.hardware.pmu import PMU, VcpuCounters


@pytest.fixture
def pmu():
    p = PMU(num_nodes=2, collection_cost_s=1e-6)
    p.register(0)
    return p


def charge(pmu, key=0, instr=1000.0, refs=20.0, misses=10.0, share=(0.5, 0.5), node=0):
    pmu.charge(
        key,
        instructions=instr,
        llc_refs=refs,
        llc_misses=misses,
        node_access_share=np.array(share),
        run_node=node,
    )


class TestCharging:
    def test_accumulates_totals(self, pmu):
        charge(pmu)
        charge(pmu)
        totals = pmu.totals(0)
        assert totals.instructions == 2000.0
        assert totals.llc_refs == 40.0
        assert totals.llc_misses == 20.0

    def test_node_accesses_follow_share(self, pmu):
        charge(pmu, misses=10.0, share=(0.8, 0.2))
        totals = pmu.totals(0)
        assert totals.node_accesses[0] == pytest.approx(8.0)
        assert totals.node_accesses[1] == pytest.approx(2.0)

    def test_local_remote_split_by_run_node(self, pmu):
        charge(pmu, misses=10.0, share=(0.8, 0.2), node=0)
        totals = pmu.totals(0)
        assert totals.local_accesses == pytest.approx(8.0)
        assert totals.remote_accesses == pytest.approx(2.0)

    def test_remote_ratio(self, pmu):
        charge(pmu, misses=10.0, share=(0.25, 0.75), node=0)
        assert pmu.totals(0).remote_ratio() == pytest.approx(0.75)

    def test_remote_ratio_zero_when_no_accesses(self, pmu):
        charge(pmu, misses=0.0)
        assert pmu.totals(0).remote_ratio() == 0.0

    def test_unregistered_vcpu_rejected(self, pmu):
        with pytest.raises(KeyError):
            charge(pmu, key=42)

    def test_bad_share_length_rejected(self, pmu):
        with pytest.raises(ValueError):
            charge(pmu, share=(1.0,))

    def test_bad_run_node_rejected(self, pmu):
        with pytest.raises(ValueError):
            charge(pmu, node=2)


class TestWindows:
    def test_window_is_delta_since_last_end(self, pmu):
        charge(pmu, instr=500.0)
        pmu.end_window(0)
        charge(pmu, instr=300.0)
        window = pmu.window(0)
        assert window.instructions == pytest.approx(300.0)

    def test_end_window_returns_closed_delta(self, pmu):
        charge(pmu, instr=500.0)
        delta = pmu.end_window(0)
        assert delta.instructions == pytest.approx(500.0)
        # New window starts empty.
        assert pmu.window(0).instructions == 0.0

    def test_totals_unaffected_by_windows(self, pmu):
        charge(pmu, instr=500.0)
        pmu.end_window(0)
        charge(pmu, instr=300.0)
        assert pmu.totals(0).instructions == pytest.approx(800.0)

    def test_totals_returns_copy(self, pmu):
        charge(pmu)
        totals = pmu.totals(0)
        totals.node_accesses[0] = 999.0
        assert pmu.totals(0).node_accesses[0] != 999.0


class TestCollectionAccounting:
    def test_collection_cost(self, pmu):
        assert pmu.record_collection() == pytest.approx(1e-6)
        assert pmu.record_collection(3) == pytest.approx(3e-6)
        assert pmu.collection_events == 4

    def test_negative_events_rejected(self, pmu):
        with pytest.raises(ValueError):
            pmu.record_collection(-1)


class TestRegistry:
    def test_register_unregister(self, pmu):
        pmu.register(5)
        assert 5 in pmu
        pmu.unregister(5)
        assert 5 not in pmu

    def test_register_idempotent(self, pmu):
        charge(pmu, instr=100.0)
        pmu.register(0)  # must not reset counters
        assert pmu.totals(0).instructions == 100.0

    def test_known_sorted(self, pmu):
        pmu.register(9)
        pmu.register(4)
        assert pmu.known() == (0, 4, 9)


class TestVcpuCountersDelta:
    def test_delta_arithmetic(self):
        a = VcpuCounters(num_nodes=2, instructions=100.0, llc_refs=10.0)
        b = VcpuCounters(num_nodes=2, instructions=250.0, llc_refs=30.0)
        delta = b.delta(a)
        assert delta.instructions == 150.0
        assert delta.llc_refs == 20.0

    def test_delta_rejects_node_mismatch(self):
        a = VcpuCounters(num_nodes=2)
        b = VcpuCounters(num_nodes=3)
        with pytest.raises(ValueError):
            b.delta(a)
