"""Tests for repro.xen.runqueue: three-class Credit queue discipline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.xen.runqueue import RunQueue
from repro.xen.vcpu import VcpuState

from tests.helpers import make_vcpu, make_vcpus


class TestPushPop:
    def test_fifo_within_class(self):
        q = RunQueue()
        a, b = make_vcpus([{"credits": 100}, {"credits": 100}])
        q.push(a)
        q.push(b)
        assert q.pop() is a
        assert q.pop() is b

    def test_class_order_boost_under_over(self):
        q = RunQueue()
        over = make_vcpu(0, credits=-100)
        under = make_vcpu(1, credits=100)
        boost = make_vcpu(2, credits=-100, boosted=True)
        q.push(over)
        q.push(under)
        q.push(boost)
        assert q.pop() is boost
        assert q.pop() is under
        assert q.pop() is over

    def test_pop_empty_returns_none(self):
        assert RunQueue().pop() is None

    def test_push_requires_runnable(self):
        q = RunQueue()
        vcpu = make_vcpu()
        vcpu.state = VcpuState.BLOCKED
        with pytest.raises(ValueError):
            q.push(vcpu)

    def test_double_push_rejected(self):
        q = RunQueue()
        vcpu = make_vcpu()
        q.push(vcpu)
        with pytest.raises(ValueError):
            q.push(vcpu)

    def test_len_and_bool(self):
        q = RunQueue()
        assert not q and len(q) == 0
        q.push(make_vcpu())
        assert q and len(q) == 1


class TestRankRestrictedPop:
    def test_pop_rank_at_most_skips_over(self):
        q = RunQueue()
        over = make_vcpu(0, credits=-10)
        q.push(over)
        assert q.pop_rank_at_most(1) is None
        assert q.pop_rank_at_most(2) is over

    def test_pop_rank_boost_only(self):
        q = RunQueue()
        under = make_vcpu(0, credits=10)
        boost = make_vcpu(1, boosted=True)
        q.push(under)
        q.push(boost)
        assert q.pop_rank_at_most(0) is boost
        assert q.pop_rank_at_most(0) is None

    def test_head_rank(self):
        q = RunQueue()
        assert q.head_rank() is None
        q.push(make_vcpu(0, credits=-10))
        assert q.head_rank() == 2
        q.push(make_vcpu(1, credits=10))
        assert q.head_rank() == 1


class TestRemoveAndScan:
    def test_remove_specific(self):
        q = RunQueue()
        a, b = make_vcpus([{}, {}])
        q.push(a)
        q.push(b)
        assert q.remove(a)
        assert not q.remove(a)
        assert q.pop() is b

    def test_min_by_pressure(self):
        q = RunQueue()
        heavy = make_vcpu(0, llc_pressure=25.0)
        light = make_vcpu(1, llc_pressure=0.1)
        q.push(heavy)
        q.push(light)
        assert q.min_by(lambda v: v.llc_pressure) is light

    def test_min_by_respects_max_rank(self):
        q = RunQueue()
        light_over = make_vcpu(0, credits=-10, llc_pressure=0.1)
        heavy_under = make_vcpu(1, credits=10, llc_pressure=25.0)
        q.push(light_over)
        q.push(heavy_under)
        assert q.min_by(lambda v: v.llc_pressure, max_rank=1) is heavy_under
        assert q.min_by(lambda v: v.llc_pressure, max_rank=2) is light_over

    def test_min_by_tie_prefers_scheduling_order(self):
        q = RunQueue()
        a, b = make_vcpus([{"llc_pressure": 1.0}, {"llc_pressure": 1.0}])
        q.push(a)
        q.push(b)
        assert q.min_by(lambda v: v.llc_pressure) is a

    def test_snapshot_is_copy(self):
        q = RunQueue()
        q.push(make_vcpu())
        snap = q.snapshot()
        snap.clear()
        assert len(q) == 1


class TestPreemptionPredicate:
    def test_under_head_preempts_over_running(self):
        q = RunQueue()
        q.push(make_vcpu(0, credits=10))
        running = make_vcpu(1, credits=-10)
        assert q.has_priority_over(running)

    def test_same_class_does_not_preempt(self):
        q = RunQueue()
        q.push(make_vcpu(0, credits=10))
        running = make_vcpu(1, credits=20)
        assert not q.has_priority_over(running)

    def test_anything_beats_idle(self):
        q = RunQueue()
        q.push(make_vcpu(0, credits=-300))
        assert q.has_priority_over(None)

    def test_empty_queue_never_preempts(self):
        assert not RunQueue().has_priority_over(make_vcpu())


class TestRequeue:
    def test_requeue_all_drains(self):
        q = RunQueue()
        vcpus = make_vcpus([{"credits": 10}, {"credits": -10}])
        for v in vcpus:
            q.push(v)
        drained = q.requeue_all()
        assert len(q) == 0
        assert set(drained) == set(vcpus)


@given(
    st.lists(
        st.tuples(
            st.sampled_from([-200.0, -10.0, 10.0, 200.0]),
            st.booleans(),
        ),
        min_size=1,
        max_size=12,
    )
)
def test_property_pop_order_is_by_rank_then_fifo(specs):
    """pop() must always yield ranks in non-decreasing order, FIFO within."""
    q = RunQueue()
    vcpus = [
        make_vcpu(i, credits=credits, boosted=boosted)
        for i, (credits, boosted) in enumerate(specs)
    ]
    for v in vcpus:
        q.push(v)
    popped = []
    while True:
        v = q.pop()
        if v is None:
            break
        popped.append(v)
    assert len(popped) == len(vcpus)
    ranks = [v.priority_rank for v in popped]
    assert ranks == sorted(ranks)
    # FIFO within a rank: keys of equal-rank vcpus appear in push order.
    for rank in set(ranks):
        keys = [v.key for v in popped if v.priority_rank == rank]
        pushed = [v.key for v in vcpus if v.priority_rank == rank]
        assert keys == pushed
