"""Static consistency checks of the experiment modules' metadata.

These guard the mapping between the paper's evaluation and the
harness: the workload axes match the paper's, the published anchor
values stay encoded, and the report-all job table covers every
experiment DESIGN.md promises.
"""

from repro.experiments import fig1, fig3, fig4, fig5, fig6, fig7, fig8, table3
from repro.experiments.report_all import _jobs
from repro.workloads.suites import ALL_PROFILES


class TestAxes:
    def test_fig1_apps_exist_and_match_paper(self):
        assert set(fig1.FIG1_APPS) <= set(ALL_PROFILES)
        assert len(fig1.FIG1_APPS) == 9  # the paper's nine bars

    def test_fig3_apps_are_the_calibration_six(self):
        assert fig3.FIG3_APPS == ("povray", "ep", "lu", "mg", "milc", "libquantum")

    def test_fig4_axis_matches_paper(self):
        assert fig4.FIG4_WORKLOADS == ("soplex", "libquantum", "mcf", "milc", "mix")

    def test_fig5_axis_matches_paper(self):
        assert fig5.FIG5_WORKLOADS == ("bt", "cg", "lu", "mg", "sp")

    def test_fig6_axis_is_16_to_112(self):
        assert fig6.FIG6_CONCURRENCY[0] == 16
        assert fig6.FIG6_CONCURRENCY[-1] == 112
        assert len(fig6.FIG6_CONCURRENCY) == 7

    def test_fig7_axis_is_2000_to_10000(self):
        assert fig7.FIG7_CONNECTIONS == (2000, 4000, 6000, 8000, 10000)

    def test_fig8_axis_spans_01_to_10s(self):
        assert fig8.FIG8_PERIODS[0] == 0.1
        assert fig8.FIG8_PERIODS[-1] == 10.0
        assert 1.0 in fig8.FIG8_PERIODS

    def test_table3_vm_counts(self):
        assert table3.TABLE3_VM_COUNTS == (1, 2, 3, 4)


class TestPublishedAnchors:
    def test_fig3_paper_rpti_values(self):
        assert fig3.PAPER_RPTI["povray"] == 0.48
        assert fig3.PAPER_RPTI["libquantum"] == 22.41

    def test_table3_paper_percentages(self):
        assert table3.PAPER_OVERHEAD_PCT[1] == 0.00847
        assert table3.PAPER_OVERHEAD_PCT[4] == 0.01062


class TestReportAllCoverage:
    def test_every_figure_and_table_has_a_job(self):
        names = {name for name, _ in _jobs(fast=True)}
        for prefix in (
            "fig1",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table3",
            "ablation",
        ):
            assert any(n.startswith(prefix) for n in names), prefix

    def test_job_names_unique(self):
        names = [name for name, _ in _jobs(fast=False)]
        assert len(names) == len(set(names))
