"""Tests for repro.baselines.lock."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.lock import GlobalLockModel


class TestAcquireCost:
    def test_uncontended_costs_critical_section(self):
        lock = GlobalLockModel(critical_section_s=10e-6, free_threshold=8)
        assert lock.acquire_cost(1) == pytest.approx(10e-6)
        assert lock.acquire_cost(8) == pytest.approx(10e-6)

    def test_contended_cost_linear_in_excess_waiters(self):
        lock = GlobalLockModel(critical_section_s=10e-6, free_threshold=8, scale=1.0)
        cost_16 = lock.acquire_cost(16)
        cost_24 = lock.acquire_cost(24)
        assert cost_16 == pytest.approx(10e-6 + 10e-6 * 8)
        assert cost_24 == pytest.approx(10e-6 + 10e-6 * 16)

    def test_scale_multiplies_wait_only(self):
        base = GlobalLockModel(critical_section_s=10e-6, scale=1.0).acquire_cost(16)
        scaled = GlobalLockModel(critical_section_s=10e-6, scale=2.0).acquire_cost(16)
        assert scaled - 10e-6 == pytest.approx(2.0 * (base - 10e-6))

    def test_statistics_accumulate(self):
        lock = GlobalLockModel()
        lock.acquire_cost(24)
        lock.acquire_cost(4)
        assert lock.acquisitions == 2
        assert lock.total_wait_s > 0
        assert lock.mean_wait_s() == pytest.approx(lock.total_wait_s / 2)

    def test_mean_wait_zero_before_use(self):
        assert GlobalLockModel().mean_wait_s() == 0.0

    def test_negative_contenders_rejected(self):
        with pytest.raises(ValueError):
            GlobalLockModel().acquire_cost(-1)

    @given(st.integers(min_value=0, max_value=128))
    def test_cost_monotone_in_contenders(self, contenders):
        lock = GlobalLockModel()
        assert lock.acquire_cost(contenders + 1) >= lock.acquire_cost(contenders)


class TestConstruction:
    def test_zero_critical_section_rejected(self):
        with pytest.raises(ValueError):
            GlobalLockModel(critical_section_s=0.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            GlobalLockModel(free_threshold=-1)
