"""Tests for the observability layer: profiler, manifests, traces, schemas."""

import json
import math
import pickle

import pytest

from repro.experiments import ScenarioConfig, npb_scenario
from repro.experiments.scenarios import make_scheduler
from repro.metrics.collectors import summarize
from repro.metrics.timeseries import trace_run
from repro.obs import (
    PhaseProfiler,
    PhaseStat,
    diff_traces,
    read_trace,
    validate_trace_file,
    write_trace,
)
from repro.obs.manifest import build_manifest, canonical_dumps, config_hash
from repro.obs.schema import (
    REPORT_ENVELOPE_SCHEMA,
    TRACE_LINE_SCHEMAS,
    validate,
    validate_report,
)


def _scenario_config(engine: str) -> ScenarioConfig:
    # sample_period_s shortened so the run (≈0.6 simulated seconds at
    # this work scale) closes several PMU windows.
    return ScenarioConfig(
        work_scale=0.03,
        seed=3,
        sample_period_s=0.1,
        log_events=True,
        engine=engine,
        label="obs-test",
    )


def _run(engine: str):
    machine = npb_scenario("lu", make_scheduler("vprobe"), _scenario_config(engine))
    trace = trace_run(machine, interval_s=0.25)
    return machine, trace


@pytest.fixture(scope="module")
def vector_run():
    return _run("vector")


@pytest.fixture(scope="module")
def reference_run():
    return _run("reference")


class TestPhaseProfiler:
    def test_disabled_is_inert(self):
        prof = PhaseProfiler(enabled=False)
        token = prof.start()
        assert token == 0
        prof.stop("analyzer", token)
        prof.count("gather_build")
        assert prof.snapshot() == {}
        assert prof.counters() == {}
        assert prof.calls("analyzer") == 0

    def test_accumulates_calls_and_wall(self):
        prof = PhaseProfiler()
        for _ in range(3):
            t0 = prof.start()
            prof.stop("analyzer", t0)
        assert prof.calls("analyzer") == 3
        assert prof.wall_s("analyzer") >= 0.0
        stat = prof.snapshot()["analyzer"]
        assert stat.calls == 3
        assert stat.wall_s == pytest.approx(prof.wall_s("analyzer"))

    def test_counters(self):
        prof = PhaseProfiler()
        prof.count("gather_build")
        prof.count("gather_build", 4)
        assert prof.counter("gather_build") == 5
        assert prof.counter("missing") == 0

    def test_scheduler_wall_sums_only_scheduler_phases(self):
        prof = PhaseProfiler()
        prof._acc.update(
            {
                "analyzer": [10, 1],
                "partition": [20, 1],
                "balance": [30, 1],
                "epoch": [1000, 1],
            }
        )
        assert prof.scheduler_wall_s() == pytest.approx(60e-9)

    def test_snapshot_is_picklable(self):
        prof = PhaseProfiler()
        t0 = prof.start()
        prof.stop("balance", t0)
        snap = prof.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_mean_us_with_zero_calls(self):
        assert PhaseStat(phase="x", calls=0, wall_s=0.0).mean_us == 0.0

    def test_clear(self):
        prof = PhaseProfiler()
        prof.stop("epoch", prof.start())
        prof.count("gather_build")
        prof.clear()
        assert prof.snapshot() == {}
        assert prof.counters() == {}

    def test_format_renders_table(self):
        prof = PhaseProfiler()
        prof.stop("analyzer", prof.start())
        text = prof.format()
        assert "phase" in text and "analyzer" in text


class TestManifest:
    def test_config_hash_ignores_non_result_fields(self):
        base = _scenario_config("vector").sim_config()
        for variant in (
            _scenario_config("reference").sim_config(),
            ScenarioConfig(
                work_scale=0.03,
                seed=3,
                sample_period_s=0.1,
                log_events=False,
                label="other",
            ).sim_config(),
        ):
            assert config_hash(base) == config_hash(variant)

    def test_config_hash_sees_result_fields(self):
        base = _scenario_config("vector").sim_config()
        other = ScenarioConfig(
            work_scale=0.03,
            seed=4,
            sample_period_s=0.1,
            log_events=True,
            label="obs-test",
        ).sim_config()
        assert config_hash(base) != config_hash(other)

    def test_canonical_dumps_is_order_insensitive(self):
        assert canonical_dumps({"b": 1, "a": 2}) == canonical_dumps({"a": 2, "b": 1})
        assert canonical_dumps({"a": 1}) == '{"a":1}'

    def test_canonical_dumps_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_dumps({"x": math.nan})

    def test_build_manifest_fields(self, vector_run):
        machine, _ = vector_run
        manifest = build_manifest(machine)
        assert manifest.policy == machine.policy.name
        assert manifest.scenario == "obs-test"  # falls back to config.label
        assert manifest.seed == 3
        assert manifest.engine == "vector"
        assert manifest.faults is None
        line = manifest.to_dict()
        assert line["type"] == "manifest"
        assert validate(line, TRACE_LINE_SCHEMAS["manifest"]) == []


class TestTraceRoundTrip:
    def test_write_read_validate(self, vector_run, tmp_path):
        machine, trace = vector_run
        path = tmp_path / "run.jsonl"
        lines = write_trace(machine, path, trace=trace, scenario="lu")
        # manifest + events + snapshots + summary
        assert lines == 1 + len(machine.log) + len(trace) + 1
        assert validate_trace_file(path) == []

        parsed = read_trace(path)
        assert parsed.manifest["scenario"] == "lu"
        assert len(parsed.events) == len(machine.log)
        assert len(parsed.snapshots) == len(trace)
        assert parsed.summary is not None
        assert parsed.summary["policy"] == machine.policy.name
        assert parsed.events_of_kind("finish")
        times = [e["t"] for e in parsed.events]
        assert times == sorted(times)

    def test_rewrite_is_byte_identical(self, vector_run, tmp_path):
        machine, trace = vector_run
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(machine, a, trace=trace)
        write_trace(machine, b, trace=trace)
        assert a.read_bytes() == b.read_bytes()
        assert diff_traces(a, b) == []

    def test_diff_reports_changed_line(self, vector_run, tmp_path):
        machine, trace = vector_run
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_trace(machine, a, trace=trace)
        lines = a.read_text().splitlines()
        lines[2] = canonical_dumps({"type": "event", "t": -1.0, "kind": "x", "data": {}})
        b.write_text("\n".join(lines) + "\n")
        diffs = diff_traces(a, b)
        assert len(diffs) == 1 and diffs[0].startswith("line 3:")


class TestEngineParity:
    """Acceptance: a fixed run traces byte-identically from both engines."""

    def test_traces_identical_after_manifest(
        self, vector_run, reference_run, tmp_path
    ):
        vec_machine, vec_trace = vector_run
        ref_machine, ref_trace = reference_run
        vec_path, ref_path = tmp_path / "vec.jsonl", tmp_path / "ref.jsonl"
        write_trace(vec_machine, vec_path, trace=vec_trace)
        write_trace(ref_machine, ref_path, trace=ref_trace)

        assert diff_traces(vec_path, ref_path, ignore_manifest=True) == []

        vec_manifest = read_trace(vec_path).manifest
        ref_manifest = read_trace(ref_path).manifest
        differing = {
            k
            for k in vec_manifest
            if vec_manifest[k] != ref_manifest[k]
        }
        assert differing == {"engine", "config"}
        assert vec_manifest["config_hash"] == ref_manifest["config_hash"]
        config_diff = {
            k
            for k in vec_manifest["config"]
            if vec_manifest["config"][k] != ref_manifest["config"][k]
        }
        assert config_diff == {"engine"}

    def test_summaries_equal_despite_profiles(self, vector_run, reference_run):
        vec_summary = summarize(vector_run[0])
        ref_summary = summarize(reference_run[0])
        assert vec_summary == ref_summary  # phase_profile excluded from eq


class TestSchemaValidator:
    def test_type_mismatch(self):
        assert validate(3, {"type": "string"})
        assert validate("x", {"type": ["string", "null"]}) == []
        assert validate(None, {"type": ["string", "null"]}) == []

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "number"})
        assert validate(True, {"type": "integer"})
        assert validate(True, {"type": "boolean"}) == []

    def test_required_and_nested_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer"}},
        }
        assert validate({}, schema) == ["$: missing required key 'a'"]
        assert validate({"a": "no"}, schema)
        assert validate({"a": 1}, schema) == []

    def test_items(self):
        schema = {"type": "array", "items": {"type": "integer"}}
        assert validate([1, 2], schema) == []
        errors = validate([1, "x"], schema)
        assert errors and "[1]" in errors[0]

    def test_report_envelope(self):
        good = {"schema": "repro.report/v2", "kind": "fig1", "payload": {}}
        assert validate_report(good) == []
        assert validate_report({"schema": "wrong", "kind": "fig1", "payload": {}})
        assert validate_report({"schema": "repro.report/v2", "payload": {}})
        # Pre-horizon-stats envelopes are stale, not silently accepted.
        assert validate_report(
            {"schema": "repro.report/v1", "kind": "fig1", "payload": {}}
        )
        assert validate(good, REPORT_ENVELOPE_SCHEMA) == []

    def test_trace_file_structure_errors(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            json.dumps({"type": "event", "t": 0.0, "kind": "x", "data": {}})
            + "\n"
            + "not json\n"
            + json.dumps({"type": "mystery"})
            + "\n"
        )
        errors = validate_trace_file(path)
        assert any("invalid JSON" in e for e in errors)
        assert any("unknown line type" in e for e in errors)
        assert any("first line must be the manifest" in e for e in errors)

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert validate_trace_file(path) == ["trace is empty"]


class TestProfilerAccounting:
    """Acceptance: inner phases explain the sample-period envelope."""

    def test_phases_recorded_for_vprobe_run(self, vector_run):
        prof = vector_run[0].profiler
        for phase in ("analyzer", "partition", "balance", "epoch", "sample_period"):
            assert prof.calls(phase) > 0, phase
        assert prof.counter("gather_build") > 0  # vector engine rebuilds

    def test_reference_engine_has_no_gather_counter(self, reference_run):
        assert reference_run[0].profiler.counter("gather_build") == 0

    def test_inner_phases_account_for_envelope(self):
        # Wall-clock assertion: best-of-3 to ride out scheduler jitter.
        best = 0.0
        for attempt in range(3):
            machine, _ = _run("vector")
            prof = machine.profiler
            envelope = prof.wall_s("sample_period")
            inner = prof.wall_s("analyzer") + prof.wall_s("partition")
            assert inner <= envelope
            best = max(best, inner / envelope)
            if best >= 0.95:
                break
        assert best >= 0.95

    def test_summary_carries_profile(self, vector_run):
        summary = summarize(vector_run[0])
        assert summary.phase_profile is not None
        assert summary.phase_profile["analyzer"].calls > 0
        payload = summary.to_dict()
        assert "phase_profile" in payload
        assert "phase_profile" not in summary.to_dict(include_profile=False)
        assert "horizon_stats" not in summary.to_dict(include_profile=False)
