"""Tests for the §VI page-migration extension in vProbe."""

import pytest

from repro.core.vprobe import VProbeParams, VProbeScheduler
from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.domain import Domain
from repro.xen.memalloc import place_single_node
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuType

GIB = 1024**3


def build(page_migration=True, num_vcpus=4):
    policy = VProbeScheduler(
        vparams=VProbeParams(page_migration=page_migration)
    )
    machine = Machine(
        xeon_e5620(),
        policy,
        SimConfig(seed=0, sample_period_s=0.2, max_time_s=5.0, log_events=True),
    )
    # All VCPUs pinned to node 0 with memory on node 0: the even spread
    # must force half to node 1, making them page-migration targets.
    profile = synthetic_profile("llc-t", total_instructions=None, with_phases=False)
    domain = Domain.homogeneous(
        "vm", 1 * GIB, place_single_node(num_vcpus, 2, node=0), profile, num_vcpus
    )
    domain.pinned_pcpus = [0, 1, 2, 3][:num_vcpus]
    machine.add_domain(domain)
    return machine, policy


class TestParams:
    def test_fraction_bounds_checked(self):
        with pytest.raises(ValueError):
            VProbeParams(page_migration_fraction=1.5)

    def test_bandwidth_positive(self):
        with pytest.raises(ValueError):
            VProbeParams(page_copy_bandwidth=0.0)

    def test_disabled_by_default(self):
        assert not VProbeParams().page_migration


class TestPageMigration:
    def test_forced_remote_vcpus_get_pages_moved(self):
        machine, _ = build(page_migration=True)
        machine.run(max_time_s=1.0)
        events = machine.log.of_kind("page_migration")
        assert events, "expected page migrations for forced-remote VCPUs"
        assert all(e.data["bytes"] > 0 for e in events)

    def test_copy_cost_charged(self):
        machine, _ = build(page_migration=True)
        machine.run(max_time_s=1.0)
        assert machine.overhead_s.get("page_migration", 0.0) > 0

    def test_disabled_variant_never_migrates_pages(self):
        machine, _ = build(page_migration=False)
        machine.run(max_time_s=1.0)
        assert machine.log.count("page_migration") == 0
        assert "page_migration" not in machine.overhead_s

    def test_migration_moves_placement_toward_assigned_node(self):
        machine, _ = build(page_migration=True)
        machine.run(max_time_s=1.0)
        domain = machine.domains[0]
        moved_any = any(
            domain.placement.slice_mix(v.workload.slice_id)[1] > 0.05
            for v in domain.vcpus
            if v.assigned_node == 1
        )
        assert moved_any

    def test_local_assignments_untouched(self):
        machine, _ = build(page_migration=True)
        machine.run(max_time_s=1.0)
        domain = machine.domains[0]
        for vcpu in domain.vcpus:
            if vcpu.assigned_node == 0 and vcpu.vcpu_type.memory_intensive:
                # Slices of locally-placed VCPUs stay home: first-touch
                # drift pulls toward node 0 and no migration targets them.
                mix = domain.placement.slice_mix(vcpu.workload.slice_id)
                assert mix[0] > 0.9
