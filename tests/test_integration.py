"""Integration tests: the paper's comparative shapes at reduced scale.

These run the real §V-A scenarios (shortened) and assert the *relative*
results the paper reports.  Scales are chosen so each test stays in the
seconds range; the full-scale regenerations live in benchmarks/.
"""

import pytest

from repro.experiments import ScenarioConfig, compare, npb_scenario, spec_scenario
from repro.experiments.scenarios import memcached_scenario

CFG = ScenarioConfig(work_scale=0.12, seed=1)


@pytest.fixture(scope="module")
def soplex_results():
    """One paired soplex comparison shared by the assertions below."""
    return compare(
        lambda p, c: spec_scenario("soplex", p, c),
        CFG,
        ("credit", "vprobe", "vcpu-p", "lb", "brm"),
    )


def runtime(results, name):
    return results[name].domain("vm1").mean_finish_time_s


class TestSpecShapes:
    def test_vprobe_beats_credit(self, soplex_results):
        assert runtime(soplex_results, "vprobe") < runtime(soplex_results, "credit")

    def test_vprobe_beats_vcpu_p(self, soplex_results):
        """The full system outperforms partitioning alone (§V-B1)."""
        assert runtime(soplex_results, "vprobe") < runtime(soplex_results, "vcpu-p")

    def test_vprobe_has_lowest_remote_accesses(self, soplex_results):
        vprobe_remote = soplex_results["vprobe"].domain("vm1").remote_accesses
        for name in ("credit", "vcpu-p", "brm"):
            assert vprobe_remote < soplex_results[name].domain("vm1").remote_accesses

    def test_credit_remote_ratio_is_high(self, soplex_results):
        """§II-B motivation: Credit leaves a large remote fraction."""
        assert soplex_results["credit"].domain("vm1").remote_ratio > 0.25

    def test_vprobe_remote_ratio_is_low(self, soplex_results):
        assert soplex_results["vprobe"].domain("vm1").remote_ratio < 0.3

    def test_brm_does_not_beat_vprobe(self, soplex_results):
        """BRM's lock contention keeps it behind vProbe (§V-B5)."""
        assert runtime(soplex_results, "brm") > runtime(soplex_results, "vprobe")

    def test_brm_overhead_is_significant(self, soplex_results):
        brm_overhead = soplex_results["brm"].machine_stats.overhead_fraction
        vprobe_overhead = soplex_results["vprobe"].machine_stats.overhead_fraction
        assert brm_overhead > 10 * vprobe_overhead

    def test_vprobe_overhead_negligible(self, soplex_results):
        """§V-C1: well under 0.1% of busy time."""
        assert soplex_results["vprobe"].machine_stats.overhead_fraction < 1e-3

    def test_vprobe_balancer_avoids_cross_node_moves(self):
        """Excluding the (deliberate) partition migrations, vProbe's
        balancing paths move far less work across nodes than Credit's."""
        from repro.experiments.scenarios import make_scheduler

        cfg = ScenarioConfig(work_scale=0.06, seed=1, log_events=True)

        def cross_balance_moves(scheduler):
            machine = spec_scenario("soplex", make_scheduler(scheduler), cfg)
            machine.run()
            # "steal" is the machine-level record (the policy-level
            # "numa_steal" duplicates it for vProbe).
            return sum(
                1
                for e in machine.log
                if e.kind in ("steal", "wake_migrate") and e.data.get("cross")
            )

        assert cross_balance_moves("vprobe") < cross_balance_moves("credit")


class TestNpbShapes:
    def test_sp_vprobe_beats_credit_and_vcpu_p(self):
        results = compare(
            lambda p, c: npb_scenario("sp", p, c),
            CFG,
            ("credit", "vprobe", "vcpu-p"),
        )
        assert runtime(results, "vprobe") < runtime(results, "credit")
        assert runtime(results, "vprobe") < runtime(results, "vcpu-p")


class TestServiceShapes:
    def test_memcached_high_concurrency_vprobe_wins_clearly(self):
        cfg = ScenarioConfig(work_scale=0.06, seed=3)
        results = compare(
            lambda p, c: memcached_scenario(96, p, c),
            cfg,
            ("credit", "vprobe"),
        )
        # The paper's best case is ~31% at c=80; demand at least a
        # clear win at reduced scale.
        assert runtime(results, "vprobe") < 0.92 * runtime(results, "credit")


class TestPairedDeterminism:
    def test_compare_is_reproducible(self):
        a = compare(
            lambda p, c: spec_scenario("milc", p, c),
            ScenarioConfig(work_scale=0.03, seed=9),
            ("credit", "vprobe"),
        )
        b = compare(
            lambda p, c: spec_scenario("milc", p, c),
            ScenarioConfig(work_scale=0.03, seed=9),
            ("credit", "vprobe"),
        )
        for name in ("credit", "vprobe"):
            assert runtime(a, name) == runtime(b, name)
