"""Tests for repro.xen.credit: accounting, preemption, NUMA-blind steal."""

import pytest

from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditParams, CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuState

GIB = 1024**3


def build_machine(num_vcpus=4, seed=0, profile=None, pins=None):
    topo = xeon_e5620()
    machine = Machine(topo, CreditScheduler(), SimConfig(seed=seed, max_time_s=10.0))
    prof = profile or synthetic_profile(
        "llc-fr", total_instructions=None, with_phases=False
    )
    domain = Domain.homogeneous(
        "vm", 1 * GIB, place_split(num_vcpus, 2), prof, num_vcpus
    )
    if pins is not None:
        domain.pinned_pcpus = pins
    machine.add_domain(domain)
    return machine


class TestCreditParams:
    def test_defaults_match_xen(self):
        params = CreditParams()
        assert params.tick_s == pytest.approx(0.010)
        assert params.slice_s == pytest.approx(0.030)

    def test_invalid_ticks_rejected(self):
        with pytest.raises(ValueError):
            CreditParams(ticks_per_acct=0)


class TestAccounting:
    def test_running_vcpus_lose_credits(self):
        machine = build_machine(num_vcpus=8)
        machine.run(max_time_s=0.005)  # past the initial fill
        running = [p.current for p in machine.pcpus if p.current]
        start = {v.key: v.credits for v in running}
        machine.run(max_time_s=0.015)  # one more tick
        still_running = [v for v in running if v.state is VcpuState.RUNNING]
        assert any(v.credits < start[v.key] for v in still_running)

    def test_credits_bounded(self):
        machine = build_machine(num_vcpus=16)
        machine.run(max_time_s=0.5)
        params = machine.policy.params
        for vcpu in machine.vcpus:
            assert params.credit_floor <= vcpu.credits <= params.credit_cap

    def test_fair_share_under_saturation(self):
        """Equal-weight CPU-bound VCPUs must receive similar service."""
        machine = build_machine(num_vcpus=16, seed=3)
        machine.run(max_time_s=2.0)
        instr = [machine.pmu.totals(v.key).instructions for v in machine.vcpus]
        mean = sum(instr) / len(instr)
        assert mean > 0
        for got in instr:
            assert got == pytest.approx(mean, rel=0.30)

    def test_slice_preemption_rotates_vcpus(self):
        machine = build_machine(num_vcpus=16, seed=1)
        machine.run(max_time_s=1.0)
        # With 16 runnable on 8 PCPUs everyone must have run.
        for vcpu in machine.vcpus:
            assert machine.pmu.totals(vcpu.key).instructions > 0


class TestWorkConservation:
    def test_no_idle_pcpu_while_vcpus_queued(self):
        machine = build_machine(num_vcpus=16, seed=2)
        machine.run(max_time_s=0.2)
        queued = sum(p.workload for p in machine.pcpus)
        idle = sum(1 for p in machine.pcpus if p.idle)
        assert not (queued > 0 and idle > 0)

    def test_all_pcpus_busy_with_surplus_vcpus(self):
        machine = build_machine(num_vcpus=16, seed=2)
        machine.run(max_time_s=0.5)
        assert all(p.busy_time_s > 0.3 for p in machine.pcpus)


class TestNumaBlindSteal:
    def test_steal_ignores_node_boundaries(self):
        """Pin all work to node 0 initially; node 1 must steal it."""
        machine = build_machine(
            num_vcpus=16, seed=4, pins=[0, 1, 2, 3] * 4
        )
        machine.run(max_time_s=0.2)
        node1 = [machine.pcpus[p] for p in machine.topology.pcpus_of_node(1)]
        assert any(not p.idle for p in node1)
        assert machine.cross_node_migrations > 0

    def test_wake_placement_prefers_lighter_pcpu(self):
        machine = build_machine(num_vcpus=2, pins=[0, 0])
        policy = machine.policy
        machine.run(max_time_s=0.002)
        vcpu = machine.vcpus[1]
        # All other PCPUs are idle; the wake target must leave PCPU 0.
        target = policy.on_vcpu_wake(vcpu, 0.002)
        assert target != 0

    def test_wake_with_no_lighter_pcpu_stays_home_without_rng_draw(self):
        """The empty-``lighter`` guard: when nowhere is less loaded than
        home the VCPU stays put, and crucially *no* draw is taken from
        the ``credit.wake`` stream — ``rng.integers(0)`` would raise,
        and even a discarded draw would perturb every later wake in the
        run, breaking paired-seed comparability."""
        machine = build_machine(num_vcpus=8, pins=list(range(8)))
        policy = machine.policy
        state_before = machine.rng.get("credit.wake").bit_generator.state
        for vcpu in machine.vcpus:  # perfectly even load: 1 per PCPU
            assert policy.on_vcpu_wake(vcpu, 0.0) == vcpu.pcpu
        assert machine.rng.get("credit.wake").bit_generator.state == state_before


class TestWeights:
    def test_refill_proportional_to_domain_weight(self):
        """A domain with double weight earns roughly double service."""
        from repro.workloads.generators import synthetic_profile
        from repro.xen.domain import Domain
        from repro.xen.memalloc import place_split
        from repro.xen.simulator import Machine, SimConfig

        topo = xeon_e5620()
        machine = Machine(topo, CreditScheduler(), SimConfig(seed=6, max_time_s=5.0))
        prof = synthetic_profile("llc-fr", total_instructions=None, with_phases=False)
        heavy = Domain.homogeneous(
            "heavy", 1 * GIB, place_split(8, 2), prof, 8, weight=512.0
        )
        light = Domain.homogeneous(
            "light", 1 * GIB, place_split(8, 2), prof, 8, weight=256.0
        )
        machine.add_domain(heavy)
        machine.add_domain(light)
        machine.run(max_time_s=2.0)

        def service(domain):
            return sum(
                machine.pmu.totals(v.key).instructions for v in domain.vcpus
            )

        ratio = service(heavy) / service(light)
        assert ratio == pytest.approx(2.0, rel=0.35)
