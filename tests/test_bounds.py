"""Tests for repro.core.bounds: the dynamic-bounds extension."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import DynamicBounds
from repro.core.classify import Bounds


class TestUpdate:
    def test_tracks_quantiles(self):
        dyn = DynamicBounds(smoothing=1.0)  # jump straight to the estimate
        pressures = [1.0, 2.0, 10.0, 15.0, 30.0, 40.0, 50.0, 60.0]
        bounds = dyn.update(pressures)
        assert bounds.low < bounds.high
        assert bounds.low > 0.5
        assert dyn.updates == 1

    def test_smoothing_limits_movement(self):
        slow = DynamicBounds(smoothing=0.1)
        fast = DynamicBounds(smoothing=0.9)
        pressures = [50.0] * 8
        slow_bounds = slow.update(pressures)
        fast_bounds = fast.update(pressures)
        assert fast_bounds.high > slow_bounds.high

    def test_too_few_samples_skipped(self):
        dyn = DynamicBounds(min_samples=4)
        before = dyn.bounds
        assert dyn.update([10.0, 20.0]) == before
        assert dyn.updates == 0

    def test_min_separation_maintained(self):
        dyn = DynamicBounds(smoothing=1.0, min_separation=2.0)
        bounds = dyn.update([10.0] * 8)  # degenerate distribution
        assert bounds.high - bounds.low >= 2.0 - 1e-9

    def test_floor_and_ceiling_respected(self):
        dyn = DynamicBounds(smoothing=1.0, floor=1.0, ceiling=50.0)
        low_bounds = dyn.update([0.0] * 8)
        assert low_bounds.low >= 1.0
        high_bounds = DynamicBounds(smoothing=1.0, floor=1.0, ceiling=50.0).update(
            [1000.0] * 8
        )
        assert high_bounds.high <= 50.0

    def test_negative_pressures_rejected(self):
        with pytest.raises(ValueError):
            DynamicBounds().update([-1.0] * 8)

    def test_returns_valid_bounds_object(self):
        bounds = DynamicBounds(smoothing=0.5).update([1.0, 5.0, 15.0, 25.0])
        assert isinstance(bounds, Bounds)


class TestConstruction:
    def test_quantiles_ordered(self):
        with pytest.raises(ValueError):
            DynamicBounds(low_q=0.8, high_q=0.2)

    def test_floor_below_ceiling(self):
        with pytest.raises(ValueError):
            DynamicBounds(floor=10.0, ceiling=5.0)

    def test_min_samples_positive(self):
        with pytest.raises(ValueError):
            DynamicBounds(min_samples=0)


@given(
    st.lists(st.floats(min_value=0, max_value=100), min_size=4, max_size=32),
    st.integers(min_value=1, max_value=20),
)
def test_property_bounds_always_valid(pressures, rounds):
    """However the distribution moves, the bounds stay valid and bounded."""
    dyn = DynamicBounds(smoothing=0.5)
    for _ in range(rounds):
        bounds = dyn.update(pressures)
        assert bounds.low < bounds.high
        assert dyn.floor <= bounds.low
        assert bounds.high <= dyn.ceiling
