"""Tests for repro.xen.pcpu."""

import pytest

from repro.xen.pcpu import Pcpu

from tests.helpers import make_vcpu


class TestWorkloadCounter:
    def test_tracks_queue_length(self):
        pcpu = Pcpu(0, node=0)
        assert pcpu.workload == 0
        pcpu.queue.push(make_vcpu(0))
        pcpu.queue.push(make_vcpu(1))
        assert pcpu.workload == 2
        pcpu.queue.pop()
        assert pcpu.workload == 1

    def test_load_with_current_counts_running(self):
        pcpu = Pcpu(0, node=0)
        assert pcpu.load_with_current == 0
        pcpu.current = make_vcpu()
        assert pcpu.load_with_current == 1
        pcpu.queue.push(make_vcpu(1))
        assert pcpu.load_with_current == 2

    def test_idle_predicate(self):
        pcpu = Pcpu(0, node=0)
        assert pcpu.idle
        pcpu.current = make_vcpu()
        assert not pcpu.idle


class TestOverheadAccounting:
    def test_charge_then_consume(self):
        pcpu = Pcpu(0, node=0)
        pcpu.charge_overhead(3e-4)
        remaining = pcpu.consume_overhead(1e-3)
        assert remaining == pytest.approx(7e-4)
        assert pcpu.overhead_pending_s == pytest.approx(0.0)

    def test_overhead_carries_over_epochs(self):
        pcpu = Pcpu(0, node=0)
        pcpu.charge_overhead(2.5e-3)
        assert pcpu.consume_overhead(1e-3) == 0.0
        assert pcpu.consume_overhead(1e-3) == 0.0
        assert pcpu.consume_overhead(1e-3) == pytest.approx(0.5e-3)

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Pcpu(0, 0).charge_overhead(-1.0)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            Pcpu(0, 0).consume_overhead(-1.0)
