"""Tests for repro.workloads.generators."""

import pytest

from repro.core.classify import Bounds, classify
from repro.workloads.generators import CLASS_PRESETS, scaled_profile, synthetic_profile
from repro.workloads.suites import get_profile
from repro.xen.vcpu import VcpuType


class TestSyntheticProfile:
    @pytest.mark.parametrize(
        "llc_class,expected",
        [
            ("llc-fr", VcpuType.LLC_FR),
            ("llc-fi", VcpuType.LLC_FI),
            ("llc-t", VcpuType.LLC_T),
        ],
    )
    def test_lands_in_requested_class(self, llc_class, expected):
        profile = synthetic_profile(llc_class)
        assert classify(profile.rpti, Bounds()) is expected

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="llc-fr"):
            synthetic_profile("llc-q")  # type: ignore[arg-type]

    def test_custom_name(self):
        assert synthetic_profile("llc-t", name="probe").name == "probe"

    def test_unbounded_option(self):
        assert not synthetic_profile("llc-fi", total_instructions=None).is_finite

    def test_phaseless_option(self):
        assert synthetic_profile("llc-fi", with_phases=False).phase is None

    def test_presets_cover_all_classes(self):
        assert set(CLASS_PRESETS) == {"llc-fr", "llc-fi", "llc-t"}


class TestScaledProfile:
    def test_scales_total_instructions_only(self):
        base = get_profile("lu")
        scaled = scaled_profile(base, 0.25)
        assert scaled.total_instructions == pytest.approx(
            base.total_instructions * 0.25
        )
        assert scaled.rpti == base.rpti
        assert scaled.working_set_bytes == base.working_set_bytes

    def test_unbounded_profiles_returned_unchanged(self):
        unbounded = synthetic_profile("llc-fr", total_instructions=None)
        assert scaled_profile(unbounded, 0.5) is unbounded

    def test_zero_scale_rejected(self):
        with pytest.raises(ValueError):
            scaled_profile(get_profile("lu"), 0.0)
