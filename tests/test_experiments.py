"""Smoke tests for the experiment modules (tiny scales).

Full-scale regeneration lives in benchmarks/; these tests check the
plumbing: every module runs end to end, produces well-formed results
and renders its table.
"""

import math

import pytest

from repro.experiments import (
    ScenarioConfig,
    ablation,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    quick_comparison,
    table3,
)

TINY = ScenarioConfig(work_scale=0.02, seed=0)


class TestFig1:
    def test_runs_and_reports_ratios(self):
        result = fig1.run(TINY, apps=("lu", "mcf"))
        assert set(result.remote_ratio) == {"lu", "mcf"}
        for ratio in result.remote_ratio.values():
            assert 0.0 <= ratio <= 1.0
        assert "remote accesses" in result.format()


class TestFig3:
    def test_rpti_matches_paper_anchors(self):
        result = fig3.run(TINY)
        for row in result.rows:
            assert row.rpti == pytest.approx(row.paper_rpti, rel=0.02)

    def test_classes_match_paper(self):
        result = fig3.run(TINY)
        for row in result.rows:
            assert row.vcpu_type is fig3.PAPER_CLASS[row.app]

    def test_miss_rates_ordered_fr_fi_t(self):
        result = fig3.run(TINY)
        assert result.row("povray").miss_rate < result.row("lu").miss_rate
        assert result.row("mg").miss_rate < result.row("milc").miss_rate

    def test_row_lookup_unknown(self):
        with pytest.raises(KeyError):
            fig3.run(TINY, apps=("lu",)).row("mg")


class TestComparisonGrids:
    def test_fig4_single_workload_grid(self):
        result = fig4.run(TINY, workloads=("soplex",), schedulers=("credit", "vprobe"))
        assert result.norm_exec_time("soplex", "credit") == pytest.approx(1.0)
        vprobe_norm = result.norm_exec_time("soplex", "vprobe")
        assert 0.3 < vprobe_norm < 1.3
        assert "soplex" in result.format()

    def test_fig5_runs(self):
        result = fig5.run(TINY, workloads=("lu",), schedulers=("credit", "lb"))
        assert result.norm_remote_accesses("lu", "credit") == pytest.approx(1.0)

    def test_fig6_runs(self):
        result = fig6.run(TINY, concurrencies=(16,), schedulers=("credit", "vprobe"))
        assert result.cell("c=16", "vprobe").exec_time_s > 0

    def test_fig7_throughput(self):
        result = fig7.run(TINY, connections=(2000,), schedulers=("credit", "vprobe"))
        tp = result.throughput("n=2000", "vprobe")
        assert tp > 0
        assert "ops/s" in result.format()

    def test_improvement_accessor(self):
        result = fig4.run(TINY, workloads=("soplex",), schedulers=("credit", "vprobe"))
        imp = result.improvement_over("soplex", "vprobe", "credit")
        assert -100.0 < imp < 100.0
        workload, best = result.best_improvement("vprobe")
        assert workload == "soplex"
        assert best == pytest.approx(imp)


class TestFig8:
    def test_sweep_produces_runtime_per_period(self):
        result = fig8.run(TINY, periods=(0.2, 1.0))
        assert len(result.runtime_s) == 2
        assert all(t > 0 or math.isnan(t) for t in result.runtime_s)
        assert result.best_period() in (0.2, 1.0)
        assert result.runtime_at(0.2) == result.runtime_s[0]

    def test_unknown_period_lookup(self):
        result = fig8.run(TINY, periods=(1.0,))
        with pytest.raises(KeyError):
            result.runtime_at(5.0)


class TestTable3:
    def test_overhead_small_and_positive(self):
        result = table3.run(TINY, vm_counts=(1, 2))
        for pct in result.overhead_pct:
            assert 0.0 < pct < 0.1  # well under 0.1%, as the paper claims
        assert result.overhead_at(1) == result.overhead_pct[0]

    def test_breakdown_sources(self):
        result = table3.run(TINY, vm_counts=(2,))
        assert "pmu" in result.breakdown[0]


class TestAblation:
    def test_bounds_ablation_runs(self):
        result = ablation.run_bounds_ablation(TINY)
        assert set(result.runtime_s) == {"static-bounds", "dynamic-bounds"}
        assert "variant" in result.format()

    def test_classification_ablation_runs(self):
        result = ablation.run_classification_ablation(TINY)
        assert set(result.runtime_s) == {"standard-classes", "all-friendly"}


class TestQuickComparison:
    def test_returns_runtimes(self):
        res = quick_comparison("lu", schedulers=("credit", "vprobe"), work_scale=0.02)
        assert set(res) == {"credit", "vprobe"}
        assert all(v > 0 for v in res.values())
