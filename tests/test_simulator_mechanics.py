"""White-box tests of Machine mechanics: migrate, steal accounting,
sampling-period delivery, PMU refresh charging."""

import pytest

from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuState

GIB = 1024**3


class CountingPolicy(CreditScheduler):
    """Credit + counters for hook invocations."""

    collects_pmu = True

    def __init__(self):
        super().__init__()
        self.sample_times = []
        self.switches = 0

    def on_sample_period(self, now):
        self.sample_times.append(now)

    def on_context_switch(self, pcpu, prev, nxt):
        self.switches += 1


def build(policy=None, num_vcpus=2, sample_period=0.05, pins=None):
    machine = Machine(
        xeon_e5620(),
        policy or CreditScheduler(),
        SimConfig(seed=0, sample_period_s=sample_period, max_time_s=10.0),
    )
    profile = synthetic_profile("llc-fi", total_instructions=None, with_phases=False)
    domain = Domain.homogeneous(
        "vm", 1 * GIB, place_split(num_vcpus, 2), profile, num_vcpus
    )
    if pins is not None:
        domain.pinned_pcpus = pins
    machine.add_domain(domain)
    return machine


class TestSamplePeriodDelivery:
    def test_fires_at_each_period_boundary(self):
        policy = CountingPolicy()
        machine = build(policy=policy, sample_period=0.05)
        machine.run(max_time_s=0.2)
        assert [pytest.approx(t) for t in (0.05, 0.1, 0.15, 0.2)] == policy.sample_times

    def test_respects_configured_period(self):
        policy = CountingPolicy()
        machine = build(policy=policy, sample_period=0.1)
        machine.run(max_time_s=0.2)
        assert len(policy.sample_times) == 2


class TestPmuRefreshCharging:
    def test_collecting_policy_pays_per_tick(self):
        policy = CountingPolicy()
        machine = build(policy=policy, pins=[0, 4])
        machine.run(max_time_s=0.2)
        # ~20 ticks x up to 2 busy PCPUs (ticks immediately after a
        # slice-expiry preemption find the PCPU empty), plus switches.
        assert machine.pmu.collection_events >= 20
        assert machine.overhead_s.get("pmu", 0.0) > 0

    def test_plain_credit_pays_nothing(self):
        machine = build()  # plain Credit: collects_pmu = False
        machine.run(max_time_s=0.2)
        assert "pmu" not in machine.overhead_s


class TestMigrateVcpu:
    def test_migrating_queued_vcpu_moves_queue_entry(self):
        machine = build(num_vcpus=2, pins=[0, 0])
        vcpu = machine.vcpus[1]  # still queued behind vcpu 0
        assert vcpu in machine.pcpus[0].queue
        machine.migrate_vcpu(vcpu, 5, now=0.0, reason="test")
        assert vcpu not in machine.pcpus[0].queue
        assert vcpu in machine.pcpus[5].queue
        assert vcpu.pcpu == 5
        assert vcpu.cross_node_migrations == 1

    def test_migrating_running_vcpu_preempts(self):
        machine = build(num_vcpus=1, pins=[0])
        machine.run(max_time_s=0.002)
        vcpu = machine.vcpus[0]
        assert vcpu.state is VcpuState.RUNNING
        machine.migrate_vcpu(vcpu, 4, now=0.002, reason="test")
        assert machine.pcpus[0].current is None
        assert vcpu.state is VcpuState.RUNNABLE
        assert vcpu in machine.pcpus[4].queue

    def test_migrating_blocked_vcpu_just_retargets(self):
        machine = build(num_vcpus=1, pins=[0])
        vcpu = machine.vcpus[0]
        vcpu.state = VcpuState.BLOCKED
        machine.pcpus[0].queue.remove(vcpu)
        machine.migrate_vcpu(vcpu, 6, now=0.0, reason="test")
        assert vcpu.pcpu == 6
        assert len(machine.pcpus[6].queue) == 0  # queued only on wake

    def test_same_pcpu_is_noop(self):
        machine = build(num_vcpus=1, pins=[0])
        vcpu = machine.vcpus[0]
        machine.migrate_vcpu(vcpu, 0, now=0.0, reason="test")
        assert vcpu.migrations == 0
        assert machine.migrations == 0


class TestSwapInStolen:
    def test_incumbent_requeued_and_stolen_runs(self):
        machine = build(num_vcpus=2, pins=[0, 4])
        thief = machine.pcpus[0]
        incumbent, stolen = machine.vcpus
        # Arrange: incumbent running on the thief, the other queued on
        # PCPU 4 and just popped by a balancer.
        thief.queue.remove(incumbent)
        incumbent.begin_run(0.0)
        thief.current = incumbent
        machine.pcpus[4].queue.remove(stolen)
        machine.swap_in_stolen(thief, stolen, now=0.002)
        assert thief.current is stolen
        assert incumbent in thief.queue
        assert stolen.pcpu == 0
        assert machine.cross_node_migrations == 1


class TestStealAccounting:
    def test_local_and_remote_steal_counters(self):
        machine = build(num_vcpus=6, pins=[0, 0, 0, 0, 0, 0])
        machine.run(max_time_s=0.3)
        # Work began all on PCPU 0; other PCPUs must have stolen both
        # within node 0 and across to node 1.
        assert machine.steals_local + machine.steals_remote > 0
        assert machine.migrations >= machine.cross_node_migrations
