"""Tests for repro.core.balance: Algorithm 2."""

import pytest

from repro.core.balance import node_visit_order, numa_aware_steal
from repro.hardware.topology import symmetric_topology, xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuState

GIB = 1024**3


def build_machine(num_vcpus=8, topology=None):
    topo = topology or xeon_e5620()
    machine = Machine(topo, CreditScheduler(), SimConfig(seed=0))
    profile = synthetic_profile("llc-fi", total_instructions=None)
    machine.add_domain(
        Domain.homogeneous(
            "vm", 1 * GIB, place_split(num_vcpus, topo.num_nodes), profile, num_vcpus
        )
    )
    return machine


def park(machine, vcpu, pcpu_id, pressure, last_ran=-10.0):
    """Place a runnable VCPU on a specific queue with a given pressure."""
    old = machine.pcpus[vcpu.pcpu]
    if vcpu in old.queue:
        old.queue.remove(vcpu)
    if old.current is vcpu:
        old.current = None
        vcpu.state = VcpuState.RUNNABLE
    vcpu.pcpu = pcpu_id
    vcpu.llc_pressure = pressure
    vcpu.last_ran_time = last_ran
    if vcpu not in machine.pcpus[pcpu_id].queue:
        machine.pcpus[pcpu_id].queue.push(vcpu)


def clear_queues(machine):
    for pcpu in machine.pcpus:
        pcpu.queue.requeue_all()
        pcpu.current = None
    for vcpu in machine.vcpus:
        vcpu.state = VcpuState.RUNNABLE


class TestNodeVisitOrder:
    def test_local_first(self):
        machine = build_machine()
        assert list(node_visit_order(machine, 0)) == [0, 1]
        assert list(node_visit_order(machine, 1)) == [1, 0]

    def test_distance_then_id_on_larger_hosts(self):
        topo = symmetric_topology(4, 2)
        machine = build_machine(num_vcpus=4, topology=topo)
        assert list(node_visit_order(machine, 2)) == [2, 0, 1, 3]


class TestStealSelection:
    def test_prefers_local_node(self):
        machine = build_machine()
        clear_queues(machine)
        local_v, remote_v = machine.vcpus[0], machine.vcpus[1]
        park(machine, local_v, pcpu_id=1, pressure=50.0)  # node 0, heavy
        park(machine, remote_v, pcpu_id=4, pressure=0.1)  # node 1, light
        thief = machine.pcpus[0]
        stolen = numa_aware_steal(machine, thief, now=1.0)
        assert stolen is local_v  # local beats lighter-but-remote

    def test_smallest_pressure_within_queue(self):
        machine = build_machine()
        clear_queues(machine)
        heavy, light = machine.vcpus[0], machine.vcpus[1]
        park(machine, heavy, pcpu_id=1, pressure=30.0)
        park(machine, light, pcpu_id=1, pressure=0.5)
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is light

    def test_most_loaded_peer_checked_first(self):
        machine = build_machine()
        clear_queues(machine)
        a, b, c = machine.vcpus[0], machine.vcpus[1], machine.vcpus[2]
        park(machine, a, pcpu_id=1, pressure=5.0)
        park(machine, b, pcpu_id=2, pressure=1.0)
        park(machine, c, pcpu_id=2, pressure=9.0)  # pcpu 2 is most loaded
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is b  # lightest on the most loaded queue

    def test_falls_back_to_remote_when_local_empty(self):
        machine = build_machine()
        clear_queues(machine)
        remote_v = machine.vcpus[0]
        park(machine, remote_v, pcpu_id=5, pressure=10.0)
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is remote_v

    def test_returns_none_when_nothing_queued(self):
        machine = build_machine()
        clear_queues(machine)
        assert numa_aware_steal(machine, machine.pcpus[0], now=1.0) is None

    def test_ignores_priority_classes(self):
        """Algorithm 2 steals by pressure even from the OVER class."""
        machine = build_machine()
        clear_queues(machine)
        over_light = machine.vcpus[0]
        under_heavy = machine.vcpus[1]
        over_light.credits = -100.0
        under_heavy.credits = 100.0
        park(machine, over_light, pcpu_id=1, pressure=0.1)
        park(machine, under_heavy, pcpu_id=1, pressure=30.0)
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is over_light

    def test_tie_breaks_by_queue_order(self):
        """On equal pressure the earliest-queued candidate wins.

        Pins ``min()``'s keep-first semantics so the victim choice is
        deterministic (and so refactors of the candidate scan can't
        silently flip it).
        """
        machine = build_machine()
        clear_queues(machine)
        first, second, third = machine.vcpus[0], machine.vcpus[1], machine.vcpus[2]
        park(machine, first, pcpu_id=1, pressure=5.0)
        park(machine, second, pcpu_id=1, pressure=5.0)
        park(machine, third, pcpu_id=1, pressure=5.0)
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is first
        # Remove the winner and the tie re-breaks to the next in order.
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is second


class TestCacheHotFilter:
    def test_recently_run_vcpus_skipped_by_busy_thief(self):
        machine = build_machine()
        clear_queues(machine)
        hot = machine.vcpus[0]
        cold = machine.vcpus[1]
        park(machine, hot, pcpu_id=1, pressure=0.1, last_ran=0.999)
        park(machine, cold, pcpu_id=1, pressure=20.0, last_ran=0.0)
        thief = machine.pcpus[0]
        thief.queue.push(machine.vcpus[2])  # thief has local work: stays picky
        stolen = numa_aware_steal(machine, thief, now=1.0)
        assert stolen is cold

    def test_idle_thief_takes_hot_work_rather_than_none(self):
        machine = build_machine()
        clear_queues(machine)
        hot = machine.vcpus[0]
        park(machine, hot, pcpu_id=1, pressure=0.1, last_ran=0.999)
        stolen = numa_aware_steal(machine, machine.pcpus[0], now=1.0)
        assert stolen is hot

    def test_busy_thief_never_falls_back_to_hot_work(self):
        """A thief with local work must return None when every queued
        candidate is cache-hot: the ``only_cold=False`` fallback is
        reserved for a PCPU about to idle, so a busy one never reaches
        it — even with steals available machine-wide."""
        machine = build_machine()
        clear_queues(machine)
        park(machine, machine.vcpus[0], pcpu_id=1, pressure=0.1, last_ran=0.999)
        park(machine, machine.vcpus[1], pcpu_id=5, pressure=0.1, last_ran=0.999)
        thief = machine.pcpus[0]
        thief.queue.push(machine.vcpus[2])  # local work: stays picky
        assert numa_aware_steal(machine, thief, now=1.0) is None

    def test_all_hot_queue_skipped_for_cold_candidate_elsewhere(self):
        """An entirely cache-hot queue yields no candidates and the scan
        moves on — it must neither crash on the empty candidate list nor
        steal hot work from the loaded peer."""
        machine = build_machine()
        clear_queues(machine)
        hot_a, hot_b, cold = machine.vcpus[0], machine.vcpus[1], machine.vcpus[2]
        # PCPU 1 is the most loaded peer but holds only hot work.
        park(machine, hot_a, pcpu_id=1, pressure=0.1, last_ran=0.999)
        park(machine, hot_b, pcpu_id=1, pressure=0.2, last_ran=0.998)
        park(machine, cold, pcpu_id=2, pressure=50.0, last_ran=0.0)
        thief = machine.pcpus[0]
        thief.queue.push(machine.vcpus[3])  # busy: cache-hot filter stays on
        stolen = numa_aware_steal(machine, thief, now=1.0)
        assert stolen is cold
