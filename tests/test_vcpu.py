"""Tests for repro.xen.vcpu: state machine and priority ranks."""

import pytest

from repro.xen.vcpu import VcpuState, VcpuType

from tests.helpers import make_vcpu


class TestPriority:
    def test_under_when_credits_non_negative(self):
        assert make_vcpu(credits=0.0).priority_under
        assert make_vcpu(credits=50.0).priority_under

    def test_over_when_credits_negative(self):
        assert not make_vcpu(credits=-1.0).priority_under

    def test_rank_order(self):
        assert make_vcpu(boosted=True).priority_rank == 0
        assert make_vcpu(credits=10).priority_rank == 1
        assert make_vcpu(credits=-10).priority_rank == 2

    def test_boost_dominates_credits(self):
        assert make_vcpu(credits=-300, boosted=True).priority_rank == 0


class TestStateMachine:
    def test_begin_and_stop_run(self):
        vcpu = make_vcpu()
        vcpu.begin_run(1.5)
        assert vcpu.state is VcpuState.RUNNING
        assert vcpu.run_start_time == 1.5
        vcpu.stop_run()
        assert vcpu.state is VcpuState.RUNNABLE

    def test_stop_run_noop_when_not_running(self):
        vcpu = make_vcpu()
        vcpu.block_until(2.0)
        vcpu.stop_run()
        assert vcpu.state is VcpuState.BLOCKED

    def test_block_clears_boost_and_slice(self):
        vcpu = make_vcpu(boosted=True)
        vcpu.slice_used_s = 0.02
        vcpu.block_until(3.0)
        assert vcpu.state is VcpuState.BLOCKED
        assert not vcpu.boosted
        assert vcpu.slice_used_s == 0.0
        assert vcpu.wake_time == 3.0

    def test_mark_done_records_time(self):
        vcpu = make_vcpu()
        vcpu.mark_done(4.2)
        assert vcpu.state is VcpuState.DONE
        assert vcpu.finish_time == 4.2
        assert not vcpu.runnable

    def test_runnable_predicate(self):
        vcpu = make_vcpu()
        assert vcpu.runnable
        vcpu.begin_run(0.0)
        assert vcpu.runnable
        vcpu.block_until(1.0)
        assert not vcpu.runnable


class TestStatistics:
    def test_migration_counters(self):
        vcpu = make_vcpu()
        vcpu.record_migration(cross_node=False)
        vcpu.record_migration(cross_node=True)
        assert vcpu.migrations == 2
        assert vcpu.cross_node_migrations == 1

    def test_name_combines_domain_and_index(self):
        vcpu = make_vcpu()
        assert vcpu.name == "dom.v0"


class TestVcpuType:
    def test_memory_intensive_classes(self):
        assert VcpuType.LLC_T.memory_intensive
        assert VcpuType.LLC_FI.memory_intensive
        assert not VcpuType.LLC_FR.memory_intensive

    def test_default_fields(self):
        vcpu = make_vcpu()
        assert vcpu.vcpu_type is VcpuType.LLC_FR
        assert vcpu.node_affinity is None
        assert vcpu.assigned_node is None
        assert vcpu.uncore_penalty == 0.0
