"""Tests for repro.util.eventlog."""

import pytest

from repro.util.eventlog import EventLog, LogEvent


class TestEventLog:
    def test_emit_and_len(self):
        log = EventLog()
        log.emit(0.1, "migrate", vcpu="vm1.v0")
        log.emit(0.2, "steal")
        assert len(log) == 2

    def test_disabled_log_is_noop(self):
        log = EventLog(enabled=False)
        log.emit(0.0, "migrate")
        assert len(log) == 0

    def test_of_kind_filters_and_preserves_order(self):
        log = EventLog()
        log.emit(0.1, "a", n=1)
        log.emit(0.2, "b")
        log.emit(0.3, "a", n=2)
        kinds = log.of_kind("a")
        assert [e.data["n"] for e in kinds] == [1, 2]

    def test_count(self):
        log = EventLog()
        for _ in range(3):
            log.emit(0.0, "x")
        assert log.count("x") == 3
        assert log.count("y") == 0

    def test_where_predicate(self):
        log = EventLog()
        log.emit(0.1, "m", cross=True)
        log.emit(0.2, "m", cross=False)
        crossing = log.where(lambda e: e.data.get("cross"))
        assert len(crossing) == 1 and crossing[0].time == 0.1

    def test_capacity_drops_and_counts(self):
        log = EventLog(capacity=2)
        for i in range(5):
            log.emit(float(i), "x")
        assert len(log) == 2
        assert log.dropped == 3

    def test_capacity_keeps_newest_events(self):
        """Ring-buffer regression: the run's tail must survive.

        The old implementation kept the *oldest* events and silently
        discarded everything after the cap — exactly the late-run
        events the figure experiments assert on.
        """
        log = EventLog(capacity=3)
        for i in range(10):
            log.emit(float(i), "x", seq=i)
        assert [e.data["seq"] for e in log] == [7, 8, 9]
        assert log.dropped == 7
        # The very last event always survives at capacity.
        log.emit(99.0, "last")
        assert list(log)[-1].kind == "last"

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_clear_resets_everything(self):
        log = EventLog(capacity=1)
        log.emit(0.0, "x")
        log.emit(0.0, "x")
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_events_are_frozen(self):
        event = LogEvent(time=1.0, kind="x")
        try:
            event.time = 2.0  # type: ignore[misc]
            raised = False
        except AttributeError:
            raised = True
        assert raised

    def test_iteration_yields_events(self):
        log = EventLog()
        log.emit(0.5, "k", a=1)
        (event,) = list(log)
        assert event.kind == "k" and event.data == {"a": 1}
