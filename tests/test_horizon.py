"""The batched engine's fused event-horizon sizing.

:meth:`~repro.xen.engine.BatchedEngine.compute_horizon` promises that
no discrete event fires strictly inside a batch, that every Credit
tick a horizon spans is recorded in the fuse plan, and that burst and
phase expiries may land only on the batch-final epoch.  These tests
check those structural invariants on every horizon decision of real
runs (by wrapping the sizing call), pin down the conservative-refusal
paths (fault stalls, the hardened vProbe), and verify the two opt-outs
— ``fuse_ticks=False`` and ``speculative=True`` — change execution
strategy without changing a single simulated bit.
"""

import math

import pytest

from repro.baselines.brm import BRMScheduler
from repro.core.vprobe import vprobe, vprobe_hardened
from repro.experiments.scenarios import (
    ScenarioConfig,
    make_scheduler,
    spec_scenario,
)
from repro.faults.plan import FaultPlan
from repro.metrics.collectors import summarize
from repro.xen.credit import CreditScheduler, SchedulerPolicy
from repro.xen.engine import BatchedEngine


def _batched_run(
    monkeypatch=None,
    check=None,
    scheduler="vprobe",
    max_time_s=1.0,
    **cfg_kw,
):
    """Run the loaded soplex scenario on the batched engine.

    ``check(engine, e0, now, kb)`` is invoked after every horizon
    decision when given (installed via ``monkeypatch`` on the class).
    """
    if check is not None:
        orig = BatchedEngine.compute_horizon

        def checked(self, now, limit):
            e0 = self.machine.epoch_index
            kb = orig(self, now, limit)
            check(self, e0, now, kb)
            return kb

        monkeypatch.setattr(BatchedEngine, "compute_horizon", checked)
    cfg = ScenarioConfig(
        work_scale=0.15, seed=0, engine="batched", **cfg_kw
    )
    machine = spec_scenario("soplex", make_scheduler(scheduler), cfg)
    machine.run(max_time_s=max_time_s)
    return machine


class TestHorizonInvariants:
    """Structural checks on every horizon decision of a real run."""

    def test_every_horizon_respects_event_boundaries(self, monkeypatch):
        decisions = []

        def check(engine, e0, now, kb):
            machine = engine.machine
            epoch = engine.epoch
            eps = machine._epochs_per_sample
            ept = machine._epochs_per_tick
            assert kb >= 1
            # Fused or not, a horizon never crosses a sampling boundary
            # (vProbe's partitioning pass runs there).
            assert kb <= eps - (e0 % eps)
            if kb > 1:
                plan = engine._fuse_plan or []
                # Every Credit tick interior to the batch must have been
                # proven quiescent and planned for replay; ticks outside
                # the plan must not exist.
                interior_ticks = {
                    j for j in range(1, kb) if (e0 + j) % ept == 0
                }
                assert {entry[0] for entry in plan} == interior_ticks
                # Burst expiries are inclusive: an incumbent's budget may
                # reach zero only on the batch-final epoch.  Replay the
                # exact subtraction chain the progress pass performs.
                for pcpu in machine.pcpus:
                    cur = pcpu.current
                    if cur is None:
                        continue
                    x = cur.run_burst_remaining_s
                    for _ in range(kb - 1):
                        x -= epoch
                        assert x > 0.0
                # No wake and no phase change strictly inside the batch
                # (phase changes may land on the batch-final epoch end).
                wake = (
                    engine.wake_heap[0][0]
                    if engine.wake_heap
                    else math.inf
                )
                phase = (
                    engine.phase_heap[0][0]
                    if engine.phase_heap
                    else math.inf
                )
                t = now
                for _ in range(1, kb):
                    t = t + epoch
                    assert wake > t
                    assert phase > t
            decisions.append(kb)

        _batched_run(monkeypatch, check)
        assert decisions and max(decisions) > 1

    def test_fused_ticks_engage_on_loaded_scenario(self):
        machine = _batched_run()
        stats = machine._engine.horizon_stats()
        assert stats["fused_ticks"] > 0
        assert stats["batches"] < stats["epochs"]

    def test_classic_sizing_never_crosses_a_tick(self, monkeypatch):
        """With fusion off, every tick terminates the horizon."""

        def check(engine, e0, now, kb):
            ept = engine.machine._epochs_per_tick
            assert kb <= ept - (e0 % ept)
            assert engine._fuse_plan is None

        machine = _batched_run(monkeypatch, check, fuse_ticks=False)
        assert machine._engine.horizon_stats()["fused_ticks"] == 0


class TestQuiescenceRefusals:
    """Conservative-False paths of the tick-quiescence contract."""

    def test_policy_contract_defaults(self):
        assert not SchedulerPolicy().tick_is_quiescent(7)
        assert CreditScheduler().tick_is_quiescent(7)
        assert vprobe().tick_is_quiescent(7)
        assert not BRMScheduler().tick_is_quiescent(7)

    def test_hardened_vprobe_refuses_every_tick(self, monkeypatch):
        hardened = vprobe_hardened()
        assert all(not hardened.tick_is_quiescent(i) for i in range(32))

        # End to end: the hardened policy's horizons stop at every tick,
        # exactly like the classic sizing.
        def check(engine, e0, now, kb):
            ept = engine.machine._epochs_per_tick
            assert kb <= ept - (e0 % ept)

        machine = _batched_run(monkeypatch, check, scheduler="vprobe-h")
        assert machine._engine.horizon_stats()["fused_ticks"] == 0

    def test_pending_stalls_disable_fusion(self, monkeypatch):
        """stall_rate > 0 keeps the classic stall-capped sizing."""

        def check(engine, e0, now, kb):
            assert engine._fuse_plan is None

        machine = _batched_run(
            monkeypatch,
            check,
            faults=FaultPlan(stall_rate=0.05, stall_epochs=5),
        )
        stats = machine._engine.horizon_stats()
        assert stats["fused_ticks"] == 0
        assert stats["fused_repicks"] == 0


def _summary(**cfg_kw):
    cfg = ScenarioConfig(work_scale=0.15, seed=0, **cfg_kw)
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=1.0)
    return summarize(machine)


class TestExecutionStrategyOptOuts:
    """fuse_ticks / speculative change scheduling of work, not results."""

    def test_fuse_ticks_false_is_bitwise_identical(self):
        reference = _summary(engine="reference")
        fused = _summary(engine="batched")
        unfused = _summary(engine="batched", fuse_ticks=False)
        assert fused == reference
        assert unfused == reference

    def test_speculative_is_bitwise_identical(self):
        reference = _summary(engine="reference")
        speculative = _summary(engine="batched", speculative=True)
        assert speculative == reference
        # The conservative completion floor binds on this scenario, so
        # speculation must actually have been exercised.
        assert speculative.horizon_stats["spec_attempts"] > 0


class TestReplayBreakEven:
    """The scalar-replay/kernel dispatch edge is a pure perf choice."""

    def test_default_break_even(self):
        # Break-even measured on the loaded scenario: the fused scalar
        # replay beats the 2D kernel for every horizon up to ~16 epochs
        # (the kernel's dispatch overhead dominates at small k).
        assert BatchedEngine._REPLAY_MAX == 16

    @pytest.mark.parametrize("replay_max", [1, 16, 10**9])
    def test_dispatch_edge_is_bitwise_neutral(self, monkeypatch, replay_max):
        reference = _summary(engine="reference")
        monkeypatch.setattr(BatchedEngine, "_REPLAY_MAX", replay_max)
        assert _summary(engine="batched") == reference
