"""Tests for repro.core.analyzer: the PMU data analyzer (§III-B)."""

import numpy as np
import pytest

from repro.core.analyzer import PmuAnalyzer
from repro.core.classify import Bounds
from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig
from repro.xen.vcpu import VcpuType

GIB = 1024**3


def machine_with_vcpu(profile):
    machine = Machine(xeon_e5620(), CreditScheduler(), SimConfig(seed=0))
    machine.add_domain(
        Domain.homogeneous("vm", 1 * GIB, place_split(1, 2), profile, 1)
    )
    return machine


def charge(machine, key, instr, refs, share, node=0):
    machine.pmu.charge(
        key,
        instructions=instr,
        llc_refs=refs,
        llc_misses=refs * 0.5,
        node_access_share=np.array(share),
        run_node=node,
    )


class TestEquation1Affinity:
    def test_affinity_is_argmax_of_node_accesses(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        charge(machine, 0, 1e6, 25e3, [0.2, 0.8])
        PmuAnalyzer().analyze(machine)
        assert machine.vcpus[0].node_affinity == 1

    def test_affinity_kept_when_no_accesses(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        machine.vcpus[0].node_affinity = 1
        # Window with instructions but zero misses: affinity unchanged.
        machine.pmu.charge(
            0,
            instructions=1e6,
            llc_refs=0.0,
            llc_misses=0.0,
            node_access_share=np.array([0.5, 0.5]),
            run_node=0,
        )
        PmuAnalyzer().analyze(machine)
        assert machine.vcpus[0].node_affinity == 1


class TestEquation2Pressure:
    def test_pressure_from_window(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        charge(machine, 0, 1e6, 25e3, [1.0, 0.0])
        samples = PmuAnalyzer().analyze(machine)
        assert machine.vcpus[0].llc_pressure == pytest.approx(25.0)
        assert samples[0].llc_pressure == pytest.approx(25.0)

    def test_windows_reset_between_periods(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer()
        charge(machine, 0, 1e6, 25e3, [1.0, 0.0])
        analyzer.analyze(machine)
        # Second period: lighter behaviour must be reflected, not averaged.
        charge(machine, 0, 1e6, 1e3, [1.0, 0.0])
        analyzer.analyze(machine)
        assert machine.vcpus[0].llc_pressure == pytest.approx(1.0)

    def test_idle_vcpu_keeps_previous_classification(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer()
        charge(machine, 0, 1e6, 25e3, [1.0, 0.0])
        analyzer.analyze(machine)
        assert machine.vcpus[0].vcpu_type is VcpuType.LLC_T
        # Empty window (VCPU never ran): type/pressure unchanged.
        analyzer.analyze(machine)
        assert machine.vcpus[0].vcpu_type is VcpuType.LLC_T
        assert machine.vcpus[0].llc_pressure == pytest.approx(25.0)


class TestEquation3Classification:
    def test_types_follow_bounds(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(Bounds(low=3.0, high=20.0))
        charge(machine, 0, 1e6, 10e3, [1.0, 0.0])
        analyzer.analyze(machine)
        assert machine.vcpus[0].vcpu_type is VcpuType.LLC_FI

    def test_custom_bounds_respected(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(Bounds(low=1.0, high=5.0))
        charge(machine, 0, 1e6, 10e3, [1.0, 0.0])
        analyzer.analyze(machine)
        assert machine.vcpus[0].vcpu_type is VcpuType.LLC_T


class TestEndToEnd:
    def test_live_run_classifies_thrashing_app(self):
        machine = machine_with_vcpu(
            synthetic_profile("llc-t", total_instructions=None, with_phases=False)
        )
        machine.run(max_time_s=0.3)
        samples = PmuAnalyzer().analyze(machine)
        (sample,) = [s for s in samples if s.instructions > 0]
        assert sample.vcpu_type is VcpuType.LLC_T
        # Synthetic llc-t preset has RPTI 25.
        assert sample.llc_pressure == pytest.approx(25.0, rel=0.1)

    def test_done_vcpus_skipped(self):
        machine = machine_with_vcpu(
            synthetic_profile("llc-fr", total_instructions=1e6, with_phases=False)
        )
        machine.run()
        samples = PmuAnalyzer().analyze(machine)
        assert samples == []


class TestStalenessAndConfidence:
    def test_confidence_starts_optimistic(self):
        """Telemetry is presumed working until evidence says otherwise."""
        assert PmuAnalyzer().confidence(0) == 1.0
        assert PmuAnalyzer().staleness(0) == 0

    def test_missed_window_decays_confidence_and_grows_staleness(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(confidence_decay=0.5)
        # Two empty periods: staleness climbs, confidence halves twice.
        (s1,) = analyzer.analyze(machine)
        (s2,) = analyzer.analyze(machine)
        assert (s1.fresh, s2.fresh) == (False, False)
        assert (s1.staleness, s2.staleness) == (1, 2)
        assert analyzer.confidence(0) == pytest.approx(0.25)

    def test_usable_window_resets_staleness_and_recovers_confidence(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(confidence_decay=0.5)
        analyzer.analyze(machine)  # miss: confidence 0.5, staleness 1
        charge(machine, 0, 1e6, 25e3, [1.0, 0.0])
        (sample,) = analyzer.analyze(machine)
        assert sample.fresh
        assert analyzer.staleness(0) == 0
        assert analyzer.confidence(0) == pytest.approx(0.75)

    def test_stale_sample_carries_previous_fields(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer()
        charge(machine, 0, 1e6, 25e3, [0.0, 1.0])
        analyzer.analyze(machine)
        (stale,) = analyzer.analyze(machine)
        assert not stale.fresh
        assert stale.llc_pressure == pytest.approx(25.0)
        assert stale.node_affinity == 1
        assert stale.vcpu_type is VcpuType.LLC_T

    @pytest.mark.parametrize("decay", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_decay_rejected(self, decay):
        with pytest.raises(ValueError):
            PmuAnalyzer(confidence_decay=decay)


class TestPlausibilityRejection:
    def test_impossible_instruction_count_rejected(self):
        """No VCPU can retire more than period * clock / CPI_base."""
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(reject_implausible=True)
        charge(machine, 0, 1e18, 25e9, [0.2, 0.8])
        (sample,) = analyzer.analyze(machine)
        assert analyzer.samples_rejected == 1
        assert not sample.fresh
        assert analyzer.staleness(0) == 1

    def test_rejection_keeps_scale_invariant_affinity(self):
        """Multiplicative corruption cannot forge an argmax: the Eq. 1
        affinity of a rejected window is still applied."""
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(reject_implausible=True)
        charge(machine, 0, 1e18, 25e9, [0.2, 0.8])
        analyzer.analyze(machine)
        assert machine.vcpus[0].node_affinity == 1

    def test_absurd_pressure_rejected(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(reject_implausible=True)
        # 200 refs per kilo-instruction: 10x the thrashing bound.
        charge(machine, 0, 1e6, 200e3, [1.0, 0.0])
        analyzer.analyze(machine)
        assert analyzer.samples_rejected == 1
        assert machine.vcpus[0].llc_pressure != pytest.approx(200.0)

    def test_healthy_window_accepted(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer(reject_implausible=True)
        charge(machine, 0, 1e6, 25e3, [1.0, 0.0])
        (sample,) = analyzer.analyze(machine)
        assert sample.fresh
        assert analyzer.samples_rejected == 0
        assert machine.vcpus[0].llc_pressure == pytest.approx(25.0)

    def test_filter_off_by_default(self):
        machine = machine_with_vcpu(synthetic_profile("llc-t"))
        analyzer = PmuAnalyzer()
        charge(machine, 0, 1e18, 25e9, [1.0, 0.0])
        (sample,) = analyzer.analyze(machine)
        assert sample.fresh
        assert analyzer.samples_rejected == 0

    def test_invalid_pressure_ceiling_rejected(self):
        with pytest.raises(ValueError):
            PmuAnalyzer(reject_implausible=True, max_plausible_pressure=0.0)
