"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "soplex"])
        assert args.app == "soplex"
        assert args.schedulers == ["credit", "vprobe"]
        assert args.work_scale == pytest.approx(0.15)

    def test_compare_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "soplex", "--schedulers", "cfs"]
            )

    def test_solo_parses(self):
        args = build_parser().parse_args(["solo", "milc"])
        assert args.command == "solo"

    def test_report_parses(self):
        args = build_parser().parse_args(["report", "out", "--fast"])
        assert args.outdir == "out" and args.fast

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace", "soplex"])
        assert args.command == "trace"
        assert args.scheduler == "vprobe"
        assert args.engine == "batched"
        assert str(args.out) == "run.jsonl"
        assert args.interval == pytest.approx(0.25)

    def test_compare_engine_flag(self):
        args = build_parser().parse_args(["compare", "soplex"])
        assert args.engine == "stacked"
        assert args.stack_lanes is None
        args = build_parser().parse_args(
            ["compare", "soplex", "--engine", "reference"]
        )
        assert args.engine == "reference"
        args = build_parser().parse_args(
            ["compare", "soplex", "--stack-lanes", "4"]
        )
        assert args.stack_lanes == 4

    def test_bench_parses(self):
        args = build_parser().parse_args(["bench"])
        assert args.suite == ["engine", "grid", "stacked", "profiler", "audit"]
        args = build_parser().parse_args(["bench", "--suite", "engine"])
        assert args.suite == ["engine"]
        args = build_parser().parse_args(["bench", "--suite", "audit"])
        assert args.suite == ["audit"]

    def test_trace_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "soplex", "--engine", "turbo"])

    def test_compare_json_flag(self, tmp_path):
        args = build_parser().parse_args(
            ["compare", "soplex", "--json", str(tmp_path / "out.json")]
        )
        assert args.json == tmp_path / "out.json"

    def test_validate_parses(self):
        args = build_parser().parse_args(["validate", "a.jsonl", "b.json"])
        assert [p.name for p in args.files] == ["a.jsonl", "b.json"]


class TestCommands:
    def test_solo_prints_calibration(self, capsys):
        assert main(["solo", "povray", "--work-scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "povray" in out
        assert "llc-fr" in out

    def test_compare_prints_table(self, capsys):
        code = main(
            [
                "compare",
                "lu",
                "--schedulers",
                "credit",
                "vprobe",
                "--work-scale",
                "0.03",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vprobe" in out and "runtime" in out
        assert "improvement over credit" in out

    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = main(
            ["trace", "lu", "--out", str(out), "--work-scale", "0.03", "--seed", "3"]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "trace lines" in printed
        assert "phase profile" in printed
        # The file round-trips through the validator used by `validate`.
        assert main(["validate", str(out)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_compare_json_report(self, tmp_path, capsys):
        out = tmp_path / "compare.json"
        code = main(
            [
                "compare",
                "lu",
                "--schedulers",
                "credit",
                "vprobe",
                "--work-scale",
                "0.03",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        import json

        from repro.obs.schema import validate_report

        envelope = json.loads(out.read_text())
        assert validate_report(envelope) == []
        assert envelope["kind"] == "compare"
        assert set(envelope["payload"]["summaries"]) == {"credit", "vprobe"}
        assert main(["validate", str(out)]) == 0

    def test_validate_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "wrong", "kind": "x", "payload": {}}\n')
        assert main(["validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().out

    def test_report_fast_writes_files(self, tmp_path, capsys):
        # Restrict to the two cheapest jobs; the full set runs in the
        # benchmark harness.
        from repro.experiments.report_all import regenerate_all

        regenerate_all(tmp_path / "r", fast=True, only=("fig3", "table3"))
        written = {p.name for p in (tmp_path / "r").glob("*.txt")}
        assert written == {"fig3_llc_missrate_rpti.txt", "table3_overhead.txt"}
        # Every table also lands as a machine-readable report.
        import json

        from repro.obs.schema import validate_report

        # ``recovery.json`` is the runner's resume ledger, not a report.
        jsons = sorted(
            p for p in (tmp_path / "r").glob("*.json") if p.stem != "recovery"
        )
        assert {p.stem for p in jsons} == {p.stem for p in (tmp_path / "r").glob("*.txt")}
        for p in jsons:
            assert validate_report(json.loads(p.read_text())) == []
