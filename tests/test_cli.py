"""Tests for the repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare", "soplex"])
        assert args.app == "soplex"
        assert args.schedulers == ["credit", "vprobe"]
        assert args.work_scale == pytest.approx(0.15)

    def test_compare_rejects_unknown_scheduler(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compare", "soplex", "--schedulers", "cfs"]
            )

    def test_solo_parses(self):
        args = build_parser().parse_args(["solo", "milc"])
        assert args.command == "solo"

    def test_report_parses(self):
        args = build_parser().parse_args(["report", "out", "--fast"])
        assert args.outdir == "out" and args.fast

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_solo_prints_calibration(self, capsys):
        assert main(["solo", "povray", "--work-scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "povray" in out
        assert "llc-fr" in out

    def test_compare_prints_table(self, capsys):
        code = main(
            [
                "compare",
                "lu",
                "--schedulers",
                "credit",
                "vprobe",
                "--work-scale",
                "0.03",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "vprobe" in out and "runtime" in out
        assert "improvement over credit" in out

    def test_report_fast_writes_files(self, tmp_path, capsys):
        # Restrict to the two cheapest jobs; the full set runs in the
        # benchmark harness.
        from repro.experiments.report_all import regenerate_all

        regenerate_all(tmp_path / "r", fast=True, only=("fig3", "table3"))
        written = {p.name for p in (tmp_path / "r").glob("*.txt")}
        assert written == {"fig3_llc_missrate_rpti.txt", "table3_overhead.txt"}
