"""Tests for repro.metrics.report."""

import pytest

from repro.metrics.report import (
    format_table,
    improvement_pct,
    normalize_map,
    normalized,
)


class TestNormalized:
    def test_basic(self):
        assert normalized(2.0, 4.0) == pytest.approx(0.5)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized(1.0, 0.0)

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            normalized(-1.0, 2.0)


class TestNormalizeMap:
    def test_normalises_to_credit(self):
        values = {"credit": 10.0, "vprobe": 5.5}
        out = normalize_map(values)
        assert out["credit"] == pytest.approx(1.0)
        assert out["vprobe"] == pytest.approx(0.55)

    def test_custom_baseline(self):
        out = normalize_map({"a": 2.0, "b": 4.0}, baseline_key="b")
        assert out["a"] == pytest.approx(0.5)

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            normalize_map({"vprobe": 1.0})

    def test_zero_baseline_rejected(self):
        """A zero denominator fails loudly via check_positive."""
        with pytest.raises(ValueError, match="baseline"):
            normalize_map({"credit": 0.0, "vprobe": 1.0})

    def test_negative_baseline_rejected(self):
        with pytest.raises(ValueError, match="baseline"):
            normalize_map({"credit": -2.0, "vprobe": 1.0})


class TestImprovementPct:
    def test_paper_headline_arithmetic(self):
        """45.2% improvement == normalised time 0.548."""
        assert improvement_pct(0.548, 1.0) == pytest.approx(45.2)

    def test_no_improvement(self):
        assert improvement_pct(1.0, 1.0) == 0.0

    def test_regression_is_negative(self):
        assert improvement_pct(1.2, 1.0) == pytest.approx(-20.0)


class TestFormatTable:
    def test_aligns_columns(self):
        text = format_table(["name", "value"], [("a", 1.5), ("long-name", 20.25)])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert lines[0].startswith("name")
        assert "long-name" in lines[3]

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456,)], float_fmt="{:.1f}")
        assert "1.2" in text and "1.23" not in text

    def test_ints_and_strings_passthrough(self):
        text = format_table(["n", "s"], [(3, "abc")])
        assert "3" in text and "abc" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text
