"""Test helpers: lightweight construction of domains and VCPUs."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.workloads.appmodel import ApplicationProfile, VcpuWorkload
from repro.workloads.generators import synthetic_profile
from repro.xen.domain import Domain
from repro.xen.memalloc import place_single_node
from repro.xen.vcpu import Vcpu, VcpuState

__all__ = ["make_domain", "make_vcpu", "make_vcpus"]


def make_domain(
    num_vcpus: int = 1,
    profile: Optional[ApplicationProfile] = None,
    name: str = "dom",
    num_nodes: int = 2,
) -> Domain:
    """A small single-node domain with synthetic workloads."""
    prof = profile or synthetic_profile("llc-fi", total_instructions=1e9)
    workloads = [
        VcpuWorkload(prof, np.random.default_rng(i), slice_id=i, num_slices=num_vcpus)
        for i in range(num_vcpus)
    ]
    return Domain(
        name,
        1024**3,
        place_single_node(num_vcpus, num_nodes, node=0),
        workloads,
        first_touch_init=False,
    )


def make_vcpu(
    key: int = 0,
    credits: float = 0.0,
    boosted: bool = False,
    llc_pressure: float = 0.0,
    domain: Optional[Domain] = None,
) -> Vcpu:
    """A runnable VCPU with chosen scheduling attributes."""
    dom = domain or make_domain()
    vcpu = Vcpu(key, dom, 0, dom.workloads[0])
    vcpu.state = VcpuState.RUNNABLE
    vcpu.credits = credits
    vcpu.boosted = boosted
    vcpu.llc_pressure = llc_pressure
    return vcpu


def make_vcpus(specs: List[dict]) -> List[Vcpu]:
    """Several VCPUs from keyword-spec dicts (each gets its own domain)."""
    return [make_vcpu(key=i, **spec) for i, spec in enumerate(specs)]
