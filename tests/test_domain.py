"""Tests for repro.xen.domain."""

import numpy as np
import pytest

from repro.util.rng import RngStreams
from repro.workloads.generators import synthetic_profile
from repro.xen.domain import Domain
from repro.xen.memalloc import place_single_node, place_split

GIB = 1024**3


class TestConstruction:
    def test_placement_slices_must_match_vcpus(self):
        profile = synthetic_profile("llc-fi")
        with pytest.raises(ValueError, match="slices"):
            Domain.homogeneous(
                "vm", 1 * GIB, place_split(3, 2), profile, num_vcpus=4
            )

    def test_pinned_pcpus_length_checked(self):
        profile = synthetic_profile("llc-fi")
        workloads = Domain.homogeneous(
            "vm", 1 * GIB, place_split(2, 2), profile, num_vcpus=2
        ).workloads
        with pytest.raises(ValueError):
            Domain("vm", 1 * GIB, place_split(2, 2), workloads, pinned_pcpus=[0])

    def test_empty_name_rejected(self):
        profile = synthetic_profile("llc-fi")
        with pytest.raises(ValueError):
            Domain.homogeneous("", 1 * GIB, place_split(1, 2), profile, 1)

    def test_homogeneous_active_subset(self):
        domain = Domain.homogeneous(
            "vm",
            1 * GIB,
            place_split(8, 2),
            synthetic_profile("llc-fi"),
            num_vcpus=8,
            active_vcpus=4,
            rng=RngStreams(0),
        )
        assert sum(w.active for w in domain.workloads) == 4
        assert [w.active for w in domain.workloads] == [True] * 4 + [False] * 4

    def test_active_vcpus_bounds_checked(self):
        with pytest.raises(ValueError):
            Domain.homogeneous(
                "vm", 1 * GIB, place_split(2, 2),
                synthetic_profile("llc-fi"), num_vcpus=2, active_vcpus=3,
            )

    def test_slice_bytes(self):
        domain = Domain.homogeneous(
            "vm", 8 * GIB, place_split(4, 2), synthetic_profile("llc-fi"), 4
        )
        assert domain.slice_bytes == pytest.approx(2 * GIB)


class TestPageMix:
    def test_page_mix_follows_current_slice(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_split(4, 2), synthetic_profile("llc-fi"), 4,
            rng=RngStreams(1),
        )
        # Slice 0 lives on node 0; concentration pulls the mix there.
        mix = domain.page_mix_for(0)
        assert mix[0] > mix[1]

    def test_affinity_node_ground_truth(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_single_node(2, 2, node=1),
            synthetic_profile("llc-fi"), 2,
        )
        assert domain.affinity_node(0) == 1
        assert domain.affinity_node(1) == 1

    def test_rotated_slice_changes_mix(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_split(2, 2), synthetic_profile("llc-fi"), 2,
        )
        before = domain.affinity_node(0)
        domain.workloads[0].slice_id = 1
        after = domain.affinity_node(0)
        assert before != after


class TestCompletion:
    def test_finite_workloads_done(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_split(2, 2),
            synthetic_profile("llc-fi", total_instructions=100.0), 2,
        )
        assert not domain.finite_workloads_done
        for w in domain.workloads:
            w.advance(100.0)
        assert domain.finite_workloads_done

    def test_inactive_vcpus_ignored_for_completion(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_split(2, 2),
            synthetic_profile("llc-fi", total_instructions=100.0), 2,
            active_vcpus=1,
        )
        domain.workloads[0].advance(100.0)
        assert domain.finite_workloads_done

    def test_unbounded_workloads_never_block_completion(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_split(1, 2),
            synthetic_profile("llc-fr", total_instructions=None), 1,
        )
        assert domain.finite_workloads_done  # vacuously: nothing finite

    def test_mean_finish_time_none_without_finishers(self):
        domain = Domain.homogeneous(
            "vm", 1 * GIB, place_split(1, 2), synthetic_profile("llc-fi"), 1
        )
        assert domain.mean_finish_time() is None
