"""Fast engines produce bit-for-bit the reference engine's results.

The :class:`~repro.xen.engine.VectorEngine` and
:class:`~repro.xen.engine.BatchedEngine` contract is not "close
enough" — it is exact equality of every simulated outcome.  These tests
run the same seeded scenario through all three engines and compare the
full :class:`~repro.metrics.collectors.RunSummary` dataclasses (finish
times, instruction/access counters, migration counts, overhead
accounting) field by field via ``==``.  The only excluded field is
``phase_profile`` (``compare=False`` on the dataclass): it records
*host* wall-clock and span counts, which legitimately differ between a
per-epoch stepper and a macro-stepper without touching any simulated
quantity.
"""

import dataclasses

import pytest

from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    make_scheduler,
    memcached_scenario,
    mix_scenario,
    spec_scenario,
)
from repro.metrics.collectors import summarize

ENGINES = ("reference", "vector", "batched")


def _run(builder, scheduler: str, engine: str, seed: int = 0):
    cfg = ScenarioConfig(work_scale=0.15, seed=seed, engine=engine)
    machine = builder(make_scheduler(scheduler), cfg)
    machine.run(max_time_s=1.0)
    return summarize(machine)


def _assert_identical(builder, scheduler: str, seed: int = 0) -> None:
    reference = _run(builder, scheduler, "reference", seed)
    for engine in ("vector", "batched"):
        candidate = _run(builder, scheduler, engine, seed)
        if reference != candidate:  # pragma: no cover - failure diagnostics
            diffs = [
                f"{field.name}: {a!r} != {b!r}"
                for field, a, b in zip(
                    dataclasses.fields(reference),
                    dataclasses.astuple(reference),
                    dataclasses.astuple(candidate),
                )
                if a != b
            ]
            pytest.fail(
                f"{engine} diverged from reference for {scheduler} "
                f"(seed {seed}):\n" + "\n".join(diffs)
            )


class TestBitwiseDeterminism:
    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_spec_scenario_all_schedulers(self, scheduler):
        """Every scheduling approach: vector == batched == reference."""
        builder = lambda p, c: spec_scenario("soplex", p, c)
        _assert_identical(builder, scheduler)

    def test_mix_scenario(self):
        """Heterogeneous co-runners keep the engines identical."""
        _assert_identical(mix_scenario, "vprobe", seed=3)

    def test_service_scenario(self):
        """Request/response workloads (blocking, wake heap) match too."""
        builder = lambda p, c: memcached_scenario(48, p, c)
        _assert_identical(builder, "credit")

    def test_engine_survives_mid_run_summary(self):
        """Summaries agree at an intermediate cut, not only at the end.

        The cut lands wherever it lands relative to each engine's
        macro-step boundaries — the batched engine must stop at the
        same epoch with the same state, not just reach the same final
        answer.
        """
        machines = {}
        for engine in ENGINES:
            cfg = ScenarioConfig(work_scale=0.15, seed=1, engine=engine)
            machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
            machine.run(max_time_s=0.4)
            machines[engine] = machine
        reference = summarize(machines["reference"])
        assert reference == summarize(machines["vector"])
        assert reference == summarize(machines["batched"])
        # Continue all runs: state carried across the cut stays equal.
        for machine in machines.values():
            machine.run(max_time_s=0.8)
        reference = summarize(machines["reference"])
        assert reference == summarize(machines["vector"])
        assert reference == summarize(machines["batched"])
