"""Tests for the deterministic fault-injection subsystem.

Three contracts matter:

* **determinism** — one (seed, plan) pair always replays bitwise, a
  zero-rate plan is indistinguishable from no plan at all, and fault
  runs stay engine-independent (vector == reference);
* **effect** — each fault kind actually fires, is counted, and hurts
  the way its model says it should;
* **graceful degradation** — the hardened scheduler never does worse
  than the naive one under the fig9 sweep, and with telemetry fully
  dead it lands at (or under) the Credit baseline instead of
  thrashing.
"""

import dataclasses
import pickle

import pytest

from repro.experiments import fig9_faults
from repro.experiments.parallel import ParallelRunner
from repro.experiments.runner import run_one
from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    mix_scenario,
    spec_scenario,
)
from repro.faults.plan import FAULT_PRESETS, DomainCrash, FaultPlan, fault_preset


def _cfg(**kw):
    base = dict(work_scale=0.05, seed=0, sample_period_s=0.25)
    base.update(kw)
    return ScenarioConfig(**base)


class TestFaultPlan:
    def test_default_plan_is_null(self):
        assert FaultPlan().is_null()

    def test_any_active_feature_is_not_null(self):
        assert not FaultPlan(drop_rate=0.1).is_null()
        assert not FaultPlan(noise_std=1.0).is_null()
        assert not FaultPlan(llc_ref_cap=1e6).is_null()
        assert not FaultPlan(stall_rate=0.01).is_null()
        assert not FaultPlan(
            crashes=(DomainCrash("vm2", at_time_s=1.0),)
        ).is_null()

    def test_zero_noise_rate_nullifies_noise(self):
        """noise_std without noise_rate can never corrupt anything."""
        assert FaultPlan(noise_std=2.0, noise_rate=0.0).is_null()

    @pytest.mark.parametrize(
        "kw",
        [
            {"drop_rate": 1.5},
            {"drop_rate": -0.1},
            {"noise_std": -1.0},
            {"noise_rate": 2.0},
            {"llc_ref_cap": -1.0},
            {"stall_rate": 1.1},
            {"stall_epochs": 0},
        ],
    )
    def test_invalid_parameters_rejected(self, kw):
        with pytest.raises(ValueError):
            FaultPlan(**kw)

    def test_crash_validation(self):
        with pytest.raises(ValueError):
            DomainCrash("", at_time_s=1.0)
        with pytest.raises(ValueError):
            DomainCrash("vm2", at_time_s=1.0, downtime_s=0.0)
        with pytest.raises(TypeError):
            FaultPlan(crashes=("vm2",))

    def test_plan_pickles(self):
        """Plans travel to ParallelRunner workers inside configs."""
        plan = FaultPlan(
            drop_rate=0.3,
            noise_std=1.0,
            llc_ref_cap=5e6,
            crashes=(DomainCrash("vm2", at_time_s=2.0),),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_presets_well_formed(self):
        assert FAULT_PRESETS["none"].is_null()
        for name, plan in FAULT_PRESETS.items():
            assert isinstance(plan, FaultPlan)
            if name != "none":
                assert not plan.is_null()

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown fault preset"):
            fault_preset("gremlins")


class TestFaultDeterminism:
    def test_same_seed_same_plan_replays_bitwise(self):
        cfg = _cfg(faults=fault_preset("chaos"))
        first = run_one(mix_scenario, "vprobe", cfg)
        second = run_one(mix_scenario, "vprobe", cfg)
        assert first == second

    @pytest.mark.parametrize("scheduler", SCHEDULER_NAMES)
    def test_zero_rate_plan_identical_to_no_faults(self, scheduler):
        """A null plan consumes no randomness: bitwise no-fault run."""
        builder = lambda p, c: spec_scenario("soplex", p, c)
        plain = run_one(builder, scheduler, _cfg(faults=None))
        nulled = run_one(builder, scheduler, _cfg(faults=FaultPlan()))
        assert nulled.fault_stats is not None
        assert nulled.fault_stats.total_events == 0
        assert dataclasses.replace(
            nulled, fault_stats=None
        ) == dataclasses.replace(plain, fault_stats=None)

    @pytest.mark.parametrize("scheduler", ["credit", "vprobe", "vprobe-h"])
    def test_vector_matches_reference_under_chaos(self, scheduler):
        """Fault hooks live above the engines; both replay them alike."""
        runs = {}
        for engine in ("reference", "vector"):
            cfg = _cfg(
                work_scale=0.1, faults=fault_preset("chaos"), engine=engine
            )
            runs[engine] = run_one(mix_scenario, scheduler, cfg)
        assert runs["reference"] == runs["vector"]

    def test_serial_matches_parallel_with_faults(self):
        cells = [
            (mix_scenario, name, _cfg(faults=fault_preset("drop50")))
            for name in ("credit", "vprobe", "vprobe-h")
        ]
        serial = ParallelRunner(1).run_cells(cells)
        parallel = ParallelRunner(3).run_cells(cells)
        assert serial == parallel


class TestFaultEffects:
    def test_dropout_fires_and_is_counted(self):
        summary = run_one(
            mix_scenario, "vprobe", _cfg(faults=fault_preset("drop50"))
        )
        stats = summary.fault_stats
        assert stats is not None
        assert stats.samples_dropped > 0
        assert stats.total_events >= stats.samples_dropped

    def test_credit_never_opens_windows_so_nothing_drops(self):
        summary = run_one(
            mix_scenario, "credit", _cfg(faults=fault_preset("drop50"))
        )
        assert summary.fault_stats.samples_dropped == 0

    def test_noise_rate_scales_corruption(self):
        """Bernoulli corruption: lower rate, fewer noisy windows."""
        full = run_one(
            mix_scenario, "vprobe", _cfg(faults=FaultPlan(noise_std=1.0))
        )
        sparse = run_one(
            mix_scenario,
            "vprobe",
            _cfg(faults=FaultPlan(noise_std=1.0, noise_rate=0.2)),
        )
        assert full.fault_stats.samples_noisy > 0
        assert 0 < sparse.fault_stats.samples_noisy < full.fault_stats.samples_noisy

    def test_saturation_clamps_llc_counters(self):
        summary = run_one(
            mix_scenario, "vprobe", _cfg(faults=FaultPlan(llc_ref_cap=1e5))
        )
        assert summary.fault_stats.windows_saturated > 0

    def test_stalls_slow_the_run(self):
        plain = run_one(mix_scenario, "credit", _cfg())
        stalled = run_one(
            mix_scenario,
            "credit",
            _cfg(faults=FaultPlan(stall_rate=0.02, stall_epochs=50)),
        )
        assert stalled.fault_stats.stalls_injected > 0
        assert (
            stalled.domain("vm1").mean_finish_time_s
            > plain.domain("vm1").mean_finish_time_s
        )

    def test_crash_restarts_domain_and_costs_progress(self):
        crash = FaultPlan(
            crashes=(
                DomainCrash("vm2", at_time_s=1.0, downtime_s=0.5),
            )
        )
        plain = run_one(mix_scenario, "credit", _cfg())
        crashed = run_one(mix_scenario, "credit", _cfg(faults=crash))
        assert crashed.fault_stats.domain_crashes == 1
        # The run still completes; the crashed domain repeats lost work.
        assert (
            crashed.domain("vm2").mean_finish_time_s
            > plain.domain("vm2").mean_finish_time_s
        )


class TestGracefulDegradation:
    def test_full_dropout_hardened_tracks_credit(self):
        """At 100% dropout vProbe-h must land within 2% of Credit."""
        plan = FaultPlan(drop_rate=1.0)
        seeds = (0, 1, 2)

        def mean(scheduler):
            total = 0.0
            for seed in seeds:
                cfg = ScenarioConfig(
                    work_scale=0.1,
                    seed=seed,
                    sample_period_s=0.25,
                    faults=plan,
                )
                total += run_one(mix_scenario, scheduler, cfg).domain(
                    "vm1"
                ).mean_finish_time_s
            return total / len(seeds)

        credit = mean("credit")
        hardened = mean("vprobe-h")
        assert hardened <= credit * 1.02

    def test_fig9_hardened_never_worse_than_naive(self):
        """The headline sweep: vProbe-h <= vProbe at every nonzero rate.

        A scaled-down (but deterministic) replica of the fig9 default:
        same scenario, same plan mapping, smaller workload and fewer
        seeds per point.
        """
        result = fig9_faults.run(
            ScenarioConfig(work_scale=0.15, seed=0, sample_period_s=1.0),
            schedulers=("vprobe", "vprobe-h"),
            seeds=6,
        )
        for rate in result.rates:
            if rate == 0.0:
                continue
            assert result.runtime("vprobe-h", rate) <= result.runtime(
                "vprobe", rate
            ), f"hardened vProbe lost to naive at fault rate {rate}"

    def test_fig9_zero_rate_plan_is_null(self):
        assert fig9_faults.fault_plan_for_rate(0.0).is_null()
        assert not fig9_faults.fault_plan_for_rate(0.5).is_null()

    def test_fig9_result_accessors(self):
        result = fig9_faults.run(
            ScenarioConfig(work_scale=0.02, seed=0),
            rates=(0.0, 1.0),
            schedulers=("credit", "vprobe"),
            seeds=1,
        )
        assert result.runtime("credit", 0.0) > 0
        with pytest.raises(KeyError):
            result.runtime("credit", 0.33)
        assert "fault rate" in result.format()
