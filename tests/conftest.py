"""Shared fixtures for the vProbe reproduction test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.experiments.scenarios import ScenarioConfig
from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

# Keep property tests fast and deterministic in CI.
settings.register_profile(
    "ci",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("ci")


@pytest.fixture
def topology():
    """The paper's Table I host."""
    return xeon_e5620()


@pytest.fixture
def quick_config():
    """A short, deterministic scenario config for integration tests."""
    return ScenarioConfig(work_scale=0.02, seed=7, max_time_s=30.0)


@pytest.fixture
def small_machine(topology):
    """A machine with one two-VCPU memory-intensive domain, under Credit."""
    machine = Machine(
        topology,
        CreditScheduler(),
        SimConfig(max_time_s=5.0, seed=11),
    )
    domain = Domain.homogeneous(
        "vm1",
        memory_bytes=2 * 1024**3,
        placement=place_split(2, topology.num_nodes),
        profile=synthetic_profile("llc-fi", total_instructions=1e9),
        num_vcpus=2,
    )
    machine.add_domain(domain)
    return machine


def run_small(machine: Machine, seconds: float = 1.0) -> None:
    """Advance a machine a fixed amount of virtual time."""
    machine.run(max_time_s=seconds)
