"""Tests for repro.core.classify: Eq. 2 and Eq. 3."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.classify import Bounds, TypeHysteresis, classify, llc_access_pressure
from repro.xen.vcpu import VcpuType


class TestLlcAccessPressure:
    def test_equation_2(self):
        # R = refs / instructions * alpha
        assert llc_access_pressure(50.0, 1000.0) == pytest.approx(50.0)

    def test_alpha_scales(self):
        assert llc_access_pressure(50.0, 1000.0, alpha=100.0) == pytest.approx(5.0)

    def test_no_instructions_gives_zero(self):
        assert llc_access_pressure(10.0, 0.0) == 0.0

    def test_paper_anchor_values(self):
        """RPTI-style counts reproduce the paper's Fig. 3 pressures."""
        # libquantum: 22.41 refs per kilo-instruction.
        assert llc_access_pressure(22.41e6, 1e9) == pytest.approx(22.41)

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            llc_access_pressure(-1.0, 100.0)

    @given(
        st.floats(min_value=0, max_value=1e12),
        st.floats(min_value=1, max_value=1e12),
    )
    def test_non_negative(self, refs, instr):
        assert llc_access_pressure(refs, instr) >= 0


class TestBounds:
    def test_paper_defaults(self):
        bounds = Bounds()
        assert bounds.low == 3.0
        assert bounds.high == 20.0

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValueError):
            Bounds(low=20.0, high=3.0)

    def test_equal_bounds_rejected(self):
        with pytest.raises(ValueError):
            Bounds(low=5.0, high=5.0)


class TestClassify:
    @pytest.mark.parametrize(
        "pressure,expected",
        [
            (0.0, VcpuType.LLC_FR),
            (2.99, VcpuType.LLC_FR),
            (3.0, VcpuType.LLC_FI),  # low bound inclusive into FI
            (19.99, VcpuType.LLC_FI),
            (20.0, VcpuType.LLC_T),  # high bound inclusive into T
            (50.0, VcpuType.LLC_T),
        ],
    )
    def test_equation_3_boundaries(self, pressure, expected):
        assert classify(pressure) is expected

    def test_paper_applications(self):
        """The six §IV-A applications land in their published classes."""
        assert classify(0.48) is VcpuType.LLC_FR  # povray
        assert classify(2.01) is VcpuType.LLC_FR  # ep
        assert classify(15.38) is VcpuType.LLC_FI  # lu
        assert classify(16.33) is VcpuType.LLC_FI  # mg
        assert classify(21.68) is VcpuType.LLC_T  # milc
        assert classify(22.41) is VcpuType.LLC_T  # libquantum

    def test_custom_bounds_shift_classes(self):
        tight = Bounds(low=1.0, high=2.0)
        assert classify(1.5, tight) is VcpuType.LLC_FI
        assert classify(2.5, tight) is VcpuType.LLC_T

    @given(st.floats(min_value=0, max_value=1e6))
    def test_total_and_ordered(self, pressure):
        """Every pressure maps to exactly one class, monotonically."""
        vtype = classify(pressure)
        bounds = Bounds()
        if vtype is VcpuType.LLC_FR:
            assert pressure < bounds.low
        elif vtype is VcpuType.LLC_FI:
            assert bounds.low <= pressure < bounds.high
        else:
            assert pressure >= bounds.high


class TestTypeHysteresis:
    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            TypeHysteresis(0)

    def test_windows_1_commits_every_sample(self):
        hyst = TypeHysteresis(1)
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_T
        assert hyst.update(0, VcpuType.LLC_T, VcpuType.LLC_FI) is VcpuType.LLC_FI

    def test_first_sample_commits_immediately(self):
        """The synthetic birth type is not worth defending: the first
        real observation always wins, whatever ``windows`` says."""
        hyst = TypeHysteresis(3)
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_T

    def test_switch_needs_consecutive_agreeing_windows(self):
        hyst = TypeHysteresis(3)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)  # first observation
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_FR
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_FR
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_T

    def test_single_corrupted_sample_cannot_flip(self):
        hyst = TypeHysteresis(2)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_FR
        # The next clean sample clears the pending switch entirely.
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR) is VcpuType.LLC_FR
        assert hyst.pending(0) is None

    def test_disagreeing_candidate_restarts_streak(self):
        hyst = TypeHysteresis(2)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_FR
        # A different raw class restarts the count at 1, not 2.
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FI) is VcpuType.LLC_FR
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FI) is VcpuType.LLC_FI

    def test_keys_are_independent(self):
        hyst = TypeHysteresis(2)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)
        hyst.update(1, VcpuType.LLC_FR, VcpuType.LLC_FR)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T)
        assert hyst.pending(0) is not None
        assert hyst.pending(1) is None

    def test_reset_forgets_key(self):
        hyst = TypeHysteresis(3)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T)
        hyst.reset(0)
        # Forgotten key behaves like a brand new one: immediate commit.
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FI) is VcpuType.LLC_FI

    def test_third_type_mid_streak_restarts_at_one(self):
        """A third class appearing mid-streak restarts the count at 1 —
        it must not inherit the previous candidate's progress."""
        hyst = TypeHysteresis(3)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T)  # T streak at 2
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FI) is VcpuType.LLC_FR
        assert hyst.pending(0) == (VcpuType.LLC_FI, 1)
        # FI needs its own full streak: 2 more windows, not 1.
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FI) is VcpuType.LLC_FR
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FI) is VcpuType.LLC_FI

    def test_reset_during_pending_switch_clears_streak(self):
        """``reset()`` mid-streak drops the pending switch *and* the
        seen marker, so the next sample commits immediately instead of
        resuming a stale count."""
        hyst = TypeHysteresis(2)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_FR)
        hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T)  # pending (T, 1)
        hyst.reset(0)
        assert hyst.pending(0) is None
        assert hyst.update(0, VcpuType.LLC_FR, VcpuType.LLC_T) is VcpuType.LLC_T
        assert hyst.pending(0) is None

    @given(st.lists(st.floats(min_value=0, max_value=50), min_size=1, max_size=20))
    def test_windows_1_is_plain_classify(self, pressures):
        """``windows=1`` reproduces un-debounced Eq. 3 exactly: every
        raw sample commits, whatever came before."""
        hyst = TypeHysteresis(1)
        committed = VcpuType.LLC_FR
        for pressure in pressures:
            raw = classify(pressure)
            committed = hyst.update(0, committed, raw)
            assert committed is raw
            assert hyst.pending(0) is None
