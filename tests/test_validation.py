"""Tests for repro.util.validation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.validation import (
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
    check_probability_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive(-1, "x")

    def test_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError):
                check_positive(bad, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive(True, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_positive("3", "x")  # type: ignore[arg-type]

    def test_error_message_names_argument(self):
        with pytest.raises(ValueError, match="bandwidth"):
            check_positive(-1, "bandwidth")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.001, "x")

    @given(st.floats(min_value=0, max_value=1e12, allow_nan=False))
    def test_returns_float(self, value):
        out = check_non_negative(value, "x")
        assert isinstance(out, float) and out == value


class TestCheckFraction:
    def test_bounds_inclusive(self):
        assert check_fraction(0.0, "f") == 0.0
        assert check_fraction(1.0, "f") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_fraction(1.0000001, "f")


class TestCheckIndex:
    def test_accepts_in_range(self):
        assert check_index(3, 4, "i") == 3

    def test_rejects_equal_to_bound(self):
        with pytest.raises(ValueError):
            check_index(4, 4, "i")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_index(-1, 4, "i")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_index(True, 4, "i")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_index(1.0, 4, "i")  # type: ignore[arg-type]


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        assert check_probability_vector([0.25, 0.75], "p") == [0.25, 0.75]

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.5, 0.6], "p")

    def test_rejects_negative_entry(self):
        with pytest.raises(ValueError):
            check_probability_vector([-0.1, 1.1], "p")

    def test_tolerates_float_noise(self):
        vec = [1.0 / 3.0] * 3
        assert math.isclose(sum(check_probability_vector(vec, "p")), 1.0)
