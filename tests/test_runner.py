"""Tests for repro.experiments.runner."""

import pytest

from repro.experiments.runner import compare, run_one
from repro.experiments.scenarios import SCHEDULER_NAMES, ScenarioConfig, solo_scenario

CFG = ScenarioConfig(work_scale=0.02, seed=0)


def builder(policy, cfg):
    return solo_scenario("lu", policy, cfg)


class TestRunOne:
    def test_returns_summary_with_policy_name(self):
        summary = run_one(builder, "credit", CFG)
        assert summary.policy == "credit"
        assert summary.domain("vm1").instructions > 0

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError):
            run_one(builder, "o1-scheduler", CFG)


class TestCompare:
    def test_defaults_to_all_five_schedulers(self):
        results = compare(builder, CFG)
        assert tuple(results) == SCHEDULER_NAMES

    def test_preserves_requested_order(self):
        results = compare(builder, CFG, ("lb", "credit"))
        assert tuple(results) == ("lb", "credit")

    def test_summaries_keyed_consistently(self):
        results = compare(builder, CFG, ("credit", "vprobe"))
        for name, summary in results.items():
            assert summary.policy == name


class TestCompareMean:
    def test_paired_over_seeds(self):
        from repro.experiments.runner import compare_mean

        stats = compare_mean(builder, CFG, ("credit", "vprobe"), seeds=(0, 1))
        assert set(stats) == {"credit", "vprobe"}
        for entry in stats.values():
            assert entry.seeds == 2
            assert entry.mean_runtime_s > 0
            assert entry.stdev_runtime_s >= 0
            assert 0.0 <= entry.mean_remote_ratio <= 1.0

    def test_single_seed_has_zero_stdev(self):
        from repro.experiments.runner import compare_mean

        stats = compare_mean(builder, CFG, ("credit",), seeds=(5,))
        assert stats["credit"].stdev_runtime_s == 0.0
        assert stats["credit"].relative_stdev == 0.0

    def test_empty_seeds_rejected(self):
        import pytest as _pytest

        from repro.experiments.runner import compare_mean

        with _pytest.raises(ValueError):
            compare_mean(builder, CFG, ("credit",), seeds=())

    def test_unknown_domain_raises(self):
        from repro.experiments.runner import compare_mean

        with pytest.raises(KeyError):
            compare_mean(
                builder, CFG, ("credit",), seeds=(0,), domain="no-such-vm"
            )

    def test_subset_ordering_preserved(self):
        from repro.experiments.runner import compare_mean

        stats = compare_mean(builder, CFG, ("lb", "credit"), seeds=(0,))
        assert tuple(stats) == ("lb", "credit")
        assert all(s.scheduler == name for name, s in stats.items())


class TestAggregateMeanStats:
    def test_length_mismatch_rejected(self):
        from repro.experiments.runner import aggregate_mean_stats

        with pytest.raises(ValueError):
            aggregate_mean_stats(("credit",), (0, 1), [], domain="vm1")
