"""Tests for repro.experiments.comparison grid containers."""

import pytest

from repro.experiments.comparison import ComparisonCell, ComparisonResult


def cell(workload, scheduler, time, total=100.0, remote=40.0):
    return ComparisonCell(
        workload=workload,
        scheduler=scheduler,
        exec_time_s=time,
        total_accesses=total,
        remote_accesses=remote,
        instructions=1e9,
        migrations=10,
        cross_node_migrations=4,
        overhead_fraction=1e-4,
    )


@pytest.fixture
def grid():
    cells = {
        ("a", "credit"): cell("a", "credit", 10.0, total=200.0, remote=100.0),
        ("a", "vprobe"): cell("a", "vprobe", 7.0, total=190.0, remote=30.0),
        ("b", "credit"): cell("b", "credit", 5.0, total=100.0, remote=50.0),
        ("b", "vprobe"): cell("b", "vprobe", 4.5, total=105.0, remote=20.0),
    }
    return ComparisonResult(
        name="test grid",
        workloads=("a", "b"),
        schedulers=("credit", "vprobe"),
        cells=cells,
    )


class TestNormalisation:
    def test_baseline_is_one(self, grid):
        assert grid.norm_exec_time("a", "credit") == pytest.approx(1.0)
        assert grid.norm_total_accesses("b", "credit") == pytest.approx(1.0)

    def test_norm_exec_time(self, grid):
        assert grid.norm_exec_time("a", "vprobe") == pytest.approx(0.7)

    def test_norm_remote(self, grid):
        assert grid.norm_remote_accesses("a", "vprobe") == pytest.approx(0.3)

    def test_improvement(self, grid):
        assert grid.improvement_over("a", "vprobe", "credit") == pytest.approx(30.0)

    def test_best_improvement(self, grid):
        workload, pct = grid.best_improvement("vprobe")
        assert workload == "a"
        assert pct == pytest.approx(30.0)

    def test_unknown_cell_raises(self, grid):
        with pytest.raises(KeyError):
            grid.cell("a", "brm")


class TestRendering:
    def test_panel_table_contains_all_workloads(self, grid):
        text = grid.panel_table("time")
        assert "a" in text and "b" in text and "vprobe" in text

    def test_format_has_three_panels(self, grid):
        text = grid.format()
        assert text.count("test grid") == 3
        assert "normalized execution time" in text
        assert "normalized remote memory accesses" in text

    def test_unknown_metric_rejected(self, grid):
        with pytest.raises(KeyError):
            grid.panel_table("latency")
