"""Tests for repro.util.rng: deterministic named streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a") == derive_seed(42, "a")

    def test_name_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_non_negative_63_bit(self):
        for name in ("x", "y", "a.b.c"):
            seed = derive_seed(123, name)
            assert 0 <= seed < 2**63

    @given(st.integers(min_value=0, max_value=2**32), st.text(min_size=1, max_size=30))
    def test_always_in_range(self, root, name):
        assert 0 <= derive_seed(root, name) < 2**63


class TestRngStreams:
    def test_same_name_same_generator(self):
        streams = RngStreams(0)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RngStreams(0)
        a = streams.get("a").random(8)
        b = streams.get("b").random(8)
        assert not np.allclose(a, b)

    def test_reproducible_across_instances(self):
        one = RngStreams(5).get("workload").random(16)
        two = RngStreams(5).get("workload").random(16)
        assert np.allclose(one, two)

    def test_new_stream_does_not_perturb_existing(self):
        plain = RngStreams(9)
        first = plain.get("a").random(4)

        mixed = RngStreams(9)
        mixed.get("zzz").random(100)  # unrelated consumer
        second = mixed.get("a").random(4)
        assert np.allclose(first, second)

    def test_spawn_differs_from_parent(self):
        parent = RngStreams(3)
        child = parent.spawn("trial-0")
        assert parent.get("s").random() != pytest.approx(child.get("s").random())

    def test_spawn_deterministic(self):
        a = RngStreams(3).spawn("t").get("s").random(4)
        b = RngStreams(3).spawn("t").get("s").random(4)
        assert np.allclose(a, b)

    def test_names_sorted(self):
        streams = RngStreams(0)
        streams.get("b")
        streams.get("a")
        assert streams.names() == ["a", "b"]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngStreams(0).get("")

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngStreams("abc")  # type: ignore[arg-type]

    def test_seed_property(self):
        assert RngStreams(17).seed == 17
